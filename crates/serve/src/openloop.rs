//! The deterministic open-loop serving simulation behind experiment R3.
//!
//! Arrivals from a [`Request`] trace are admitted onto `c` tenant slots —
//! FIFO per slot, earliest-free-slot placement, which is the classic
//! `c`-server FIFO queue — where each admitted request holds its slot for
//! its *calibrated* service time ([`crate::calibrate`]). This is a
//! queueing-level model, not a re-run of the cycle-accurate runtime: it
//! keeps 10⁵-request load sweeps tractable while preserving exactly the
//! quantities R3 studies — queueing delay, deadline misses, shed rate,
//! goodput — and the calibration ties its service times to the real
//! simulator.
//!
//! Faults compose the same way they do in the runtime: a seeded
//! [`FaultTimeline`] interleaves with arrivals; a fault that lands on a
//! busy slot discards the in-progress attempt (bounded retries, then the
//! job fails), and a *permanent* fault is offered to [`Quarantine`] — when
//! admitted, the healthy carve window shrinks and excess slots are evicted,
//! their residents migrating to the surviving slots. Shedding therefore
//! reacts to fault-driven capacity loss with no extra coupling: fewer
//! slots ⇒ later predicted starts ⇒ more sheds.
//!
//! The whole simulation is a sequential pure function of `(trace,
//! services, policy, fault plan)`: byte-identical output at any worker
//! count, which is what lets `ci.sh` gate R3 across `--threads 1/2/8`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use mocha_fabric::FabricConfig;
use mocha_fault::{FaultEvent, FaultKind, FaultPlan, FaultTimeline, Quarantine};
use mocha_json::{ToJson, Value};
use mocha_obs::{names, Recorder};
use mocha_runtime::lease;

use crate::shed::ShedPolicy;
use crate::traffic::Request;

/// Open-loop simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopParams<'a> {
    /// The parent fabric slots are carved from.
    pub fabric: &'a FabricConfig,
    /// Requested tenant slots (clamped to what the fabric can host).
    pub slots: usize,
    /// Admission-control policy.
    pub shed: ShedPolicy,
    /// Optional fault schedule; permanent faults shrink capacity via
    /// quarantine, exactly composing with shedding.
    pub faults: Option<&'a FaultPlan>,
    /// Record per-request `job/<idx>` spans and `fault/<kind>` lost-work
    /// spans (queue-depth and latency histograms are always recorded).
    pub record_spans: bool,
}

/// Per-request fate, indexed like the input trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Shed at admission; never ran.
    Shed,
    /// Completed: first service start and finish cycles.
    Done {
        /// Cycle the first service attempt began.
        start: u64,
        /// Completion cycle.
        finish: u64,
    },
    /// Admitted but dropped after exhausting its fault-retry budget.
    Failed {
        /// Cycle of the fault that exhausted the budget.
        at: u64,
    },
}

/// Aggregate outcome of one open-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopReport {
    /// Shed policy name.
    pub policy: String,
    /// Tenant slots the run started with.
    pub servers: usize,
    /// Requests offered by the trace.
    pub offered: usize,
    /// Requests admitted past the shed gate.
    pub admitted: usize,
    /// Requests shed at admission.
    pub shed: usize,
    /// Admitted requests that completed.
    pub completed: usize,
    /// Admitted requests dropped after exhausting fault retries.
    pub failed: usize,
    /// Completions that finished past their deadline.
    pub deadline_misses: usize,
    /// Completions within their deadline (all completions when a request
    /// has no deadline).
    pub in_slo: usize,
    /// Last simulated cycle (max of arrivals and completions).
    pub horizon: u64,
    /// Slot-cycles spent on successful service attempts.
    pub busy_cycles: u64,
    /// Slot-cycles discarded to faults (interrupted attempts).
    pub lost_cycles: u64,
    /// Fault events drawn from the timeline.
    pub faults_injected: usize,
    /// Permanent faults admitted into quarantine.
    pub quarantined: usize,
    /// Mean first-start queue wait over completions, cycles.
    pub mean_queue_wait: f64,
    /// Every fault event drawn, in injection order: `(cycle, kind name)`.
    /// Feeds the fault-kind dimension of windowed telemetry; not part of
    /// the JSON report (which keeps its pre-telemetry byte shape).
    pub fault_log: Vec<(u64, &'static str)>,
    latencies: Vec<u64>, // sorted
}

impl OpenLoopReport {
    /// Nearest-rank latency percentile over completions (0 when none).
    pub fn latency_percentile(&self, p: f64) -> u64 {
        if self.latencies.is_empty() {
            return 0;
        }
        let rank = (p / 100.0 * self.latencies.len() as f64).ceil() as usize;
        self.latencies[rank.clamp(1, self.latencies.len()) - 1]
    }

    /// In-SLO completions per million cycles of horizon — the goodput R3
    /// plots against offered load.
    pub fn goodput_per_mcycle(&self) -> f64 {
        if self.horizon == 0 {
            return 0.0;
        }
        self.in_slo as f64 * 1e6 / self.horizon as f64
    }

    /// Fraction of slot-cycles spent serving (successful or discarded
    /// attempts), over the initial slot count.
    pub fn utilization(&self) -> f64 {
        if self.horizon == 0 || self.servers == 0 {
            return 0.0;
        }
        (self.busy_cycles + self.lost_cycles) as f64 / (self.horizon * self.servers as u64) as f64
    }
}

impl ToJson for OpenLoopReport {
    fn to_json(&self) -> Value {
        mocha_json::jobj! {
            "open_loop" => true,
            "policy" => self.policy.as_str(),
            "servers" => self.servers as u64,
            "offered" => self.offered as u64,
            "admitted" => self.admitted as u64,
            "shed" => self.shed as u64,
            "completed" => self.completed as u64,
            "failed" => self.failed as u64,
            "deadline_misses" => self.deadline_misses as u64,
            "in_slo" => self.in_slo as u64,
            "horizon" => self.horizon,
            "busy_cycles" => self.busy_cycles,
            "lost_cycles" => self.lost_cycles,
            "faults_injected" => self.faults_injected as u64,
            "quarantined" => self.quarantined as u64,
            "goodput_per_mcycle" => self.goodput_per_mcycle(),
            "latency_p50" => self.latency_percentile(50.0),
            "latency_p95" => self.latency_percentile(95.0),
            "latency_p99" => self.latency_percentile(99.0),
            "mean_queue_wait" => self.mean_queue_wait,
            "utilization" => self.utilization(),
        }
    }
}

/// One admitted request somewhere in a slot's FIFO queue.
struct Job {
    idx: usize,
    arrival: u64,
    deadline: u64, // u64::MAX = no SLO
    len: u64,
    /// Current attempt's scheduled start.
    attempt_start: u64,
    /// Current attempt's scheduled completion.
    end: u64,
    /// Start of the *first* attempt, frozen the first time a fault
    /// interrupts the job after it began (queue wait is measured to here).
    first_start: Option<u64>,
    attempts: usize,
}

struct Slot {
    queue: VecDeque<Job>,
    free_at: u64,
}

struct Sim {
    slots: Vec<Slot>,
    requested: usize,
    quarantine: Quarantine,
    /// Scheduled first-attempt starts of admitted-but-unstarted requests;
    /// its length after popping elapsed entries is the queue depth.
    /// Rebuilt whenever a fault shifts schedules.
    unstarted: BinaryHeap<Reverse<u64>>,
    outcomes: Vec<RequestOutcome>,
    admitted: usize,
    shed: usize,
    completed: usize,
    failed: usize,
    misses: usize,
    in_slo: usize,
    busy: u64,
    lost: u64,
    wait_sum: u64,
    horizon: u64,
    faults_injected: usize,
    quarantined: usize,
    fault_log: Vec<(u64, &'static str)>,
    latencies: Vec<u64>,
}

/// Runs the open-loop simulation over a trace. `services[i]` is the
/// calibrated slot service time of `requests[i]` (see
/// [`Calibration::service`](crate::Calibration::service)). Returns the
/// aggregate report and the per-request outcomes in trace order.
pub fn run_open_loop<R: Recorder>(
    p: &OpenLoopParams,
    requests: &[Request],
    services: &[u64],
    rec: &mut R,
) -> (OpenLoopReport, Vec<RequestOutcome>) {
    assert_eq!(
        requests.len(),
        services.len(),
        "one service time per request"
    );
    debug_assert!(requests.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    let servers = p.slots.clamp(1, lease::max_tenants(p.fabric).max(1));
    let mut timeline = p.faults.map(|plan| FaultTimeline::new(plan, p.fabric));
    let mut sim = Sim {
        slots: (0..servers)
            .map(|_| Slot {
                queue: VecDeque::new(),
                free_at: 0,
            })
            .collect(),
        requested: servers,
        quarantine: Quarantine::default(),
        unstarted: BinaryHeap::new(),
        outcomes: vec![RequestOutcome::Shed; requests.len()],
        admitted: 0,
        shed: 0,
        completed: 0,
        failed: 0,
        misses: 0,
        in_slo: 0,
        busy: 0,
        lost: 0,
        wait_sum: 0,
        horizon: 0,
        faults_injected: 0,
        quarantined: 0,
        fault_log: Vec::new(),
        latencies: Vec::new(),
    };

    for (i, (req, &service)) in requests.iter().zip(services).enumerate() {
        sim.drain_faults(&mut timeline, p, req.arrival, rec);
        sim.retire_completed(req.arrival, rec, p.record_spans);
        while let Some(&Reverse(s)) = sim.unstarted.peek() {
            if s > req.arrival {
                break;
            }
            sim.unstarted.pop();
        }
        let depth = sim.unstarted.len();
        rec.add(names::SERVE_REQUESTS, 1);
        rec.sample(names::HIST_SERVE_QUEUE_DEPTH, depth as u64);
        sim.horizon = sim.horizon.max(req.arrival);
        let j = sim.argmin_free();
        let start = req.arrival.max(sim.slots[j].free_at);
        let deadline = req.deadline.unwrap_or(u64::MAX);
        let shed = match p.shed {
            ShedPolicy::None => false,
            ShedPolicy::Queue(cap) => depth >= cap,
            ShedPolicy::Deadline => {
                deadline != u64::MAX
                    && start.saturating_add(service) > req.arrival.saturating_add(deadline)
            }
        };
        if shed {
            sim.shed += 1;
            rec.add(names::SERVE_SHED, 1);
            if matches!(p.shed, ShedPolicy::Deadline) {
                rec.sample(
                    names::HIST_SERVE_SHED_SLACK,
                    start + service - (req.arrival + deadline),
                );
            }
            continue; // outcome stays Shed
        }
        sim.admitted += 1;
        rec.add(names::SERVE_ADMITTED, 1);
        sim.slots[j].queue.push_back(Job {
            idx: i,
            arrival: req.arrival,
            deadline,
            len: service,
            attempt_start: start,
            end: start + service,
            first_start: None,
            attempts: 0,
        });
        sim.slots[j].free_at = start + service;
        if start > req.arrival {
            sim.unstarted.push(Reverse(start));
        }
    }

    // Trailing faults: keep drawing while events land before the last
    // scheduled completion, so a fault cannot be skipped just because no
    // arrival follows it.
    loop {
        let last = sim.slots.iter().map(|s| s.free_at).max().unwrap_or(0);
        let Some(tl) = timeline.as_mut() else { break };
        match tl.peek() {
            Some(ev) if ev.at <= last => {
                let ev = tl.pop().expect("peeked");
                sim.apply_fault(ev, p, rec);
            }
            _ => break,
        }
    }
    sim.retire_completed(u64::MAX, rec, p.record_spans);

    let Sim {
        admitted,
        shed,
        completed,
        failed,
        misses,
        in_slo,
        busy,
        lost,
        wait_sum,
        horizon,
        faults_injected,
        quarantined,
        fault_log,
        mut latencies,
        outcomes,
        ..
    } = sim;
    latencies.sort_unstable();
    let report = OpenLoopReport {
        policy: p.shed.name(),
        servers,
        offered: requests.len(),
        admitted,
        shed,
        completed,
        failed,
        deadline_misses: misses,
        in_slo,
        horizon,
        busy_cycles: busy,
        lost_cycles: lost,
        faults_injected,
        quarantined,
        mean_queue_wait: if completed == 0 {
            0.0
        } else {
            wait_sum as f64 / completed as f64
        },
        fault_log,
        latencies,
    };
    (report, outcomes)
}

impl Sim {
    /// Earliest-free slot, ties toward the lowest index.
    fn argmin_free(&self) -> usize {
        let mut best = 0;
        for (i, s) in self.slots.iter().enumerate() {
            if s.free_at < self.slots[best].free_at {
                best = i;
            }
        }
        best
    }

    fn drain_faults<R: Recorder>(
        &mut self,
        timeline: &mut Option<FaultTimeline>,
        p: &OpenLoopParams,
        upto: u64,
        rec: &mut R,
    ) {
        let Some(tl) = timeline.as_mut() else { return };
        while let Some(ev) = tl.peek() {
            if ev.at > upto {
                break;
            }
            let ev = tl.pop().expect("peeked");
            self.apply_fault(ev, p, rec);
        }
    }

    fn retire_completed<R: Recorder>(&mut self, now: u64, rec: &mut R, spans: bool) {
        for v in 0..self.slots.len() {
            while let Some(front) = self.slots[v].queue.front() {
                if front.end > now {
                    break;
                }
                let job = self.slots[v].queue.pop_front().expect("checked");
                self.complete(job, rec, spans);
            }
        }
    }

    fn complete<R: Recorder>(&mut self, job: Job, rec: &mut R, spans: bool) {
        let first = job.first_start.unwrap_or(job.attempt_start);
        let latency = job.end - job.arrival;
        let wait = first - job.arrival;
        self.completed += 1;
        self.busy += job.len;
        self.wait_sum += wait;
        self.horizon = self.horizon.max(job.end);
        self.latencies.push(latency);
        rec.sample(names::HIST_JOB_LATENCY, latency);
        rec.sample(names::HIST_QUEUE_WAIT, wait);
        if latency <= job.deadline {
            self.in_slo += 1;
        } else {
            self.misses += 1;
            rec.add(names::SERVE_DEADLINE_MISSES, 1);
        }
        if spans {
            let idx = job.idx;
            rec.span(|| format!("job/{idx}"), first, job.end);
        }
        self.outcomes[job.idx] = RequestOutcome::Done {
            start: first,
            finish: job.end,
        };
    }

    fn fail(&mut self, job: Job, at: u64) {
        self.failed += 1;
        self.outcomes[job.idx] = RequestOutcome::Failed { at };
    }

    /// Slots a fault's hardware scope maps onto: geometric kinds project
    /// proportionally onto the slot strip (leases are ordered column/bank
    /// intervals), anonymous capacity kinds round-robin, and a DRAM glitch
    /// is channel-wide — it corrupts the active attempt on every slot.
    fn victims(&self, kind: &FaultKind, fabric: &FabricConfig) -> Vec<usize> {
        let n = self.slots.len();
        let clamp = |i: usize| i.min(n - 1);
        match kind {
            FaultKind::PeRect { col0, .. } => vec![clamp(col0 * n / fabric.pe_cols.max(1))],
            FaultKind::SpmBank { bank } => vec![clamp(bank * n / fabric.spm_banks.max(1))],
            FaultKind::NocLane { lane } => vec![lane % n],
            FaultKind::DmaEngine { engine } => vec![engine % n],
            FaultKind::DramChannel => (0..n).collect(),
        }
    }

    fn apply_fault<R: Recorder>(&mut self, ev: FaultEvent, p: &OpenLoopParams, rec: &mut R) {
        let plan = p.faults.expect("fault event implies a plan");
        self.faults_injected += 1;
        self.fault_log.push((ev.at, ev.kind.name()));
        rec.add(names::FAULT_INJECTED, 1);
        rec.add(
            if ev.permanent {
                names::FAULT_PERMANENT
            } else {
                names::FAULT_TRANSIENT
            },
            1,
        );
        rec.add(kind_counter(&ev.kind), 1);
        // Work that finished strictly before the fault commits first —
        // the runtime's commit-wins-ties event ordering.
        self.retire_completed(ev.at, rec, p.record_spans);
        let mut changed = false;
        for v in self.victims(&ev.kind, p.fabric) {
            changed |= self.disrupt(v, ev.at, &ev.kind, plan, rec, p.record_spans);
        }
        if ev.permanent && self.quarantine.admit(&ev.kind, p.fabric) {
            self.quarantined += 1;
            rec.add(names::FAULT_QUARANTINED, 1);
            let cap = self
                .requested
                .min(self.quarantine.window(p.fabric).max_tenants())
                .max(1);
            while self.slots.len() > cap {
                self.evict_last(ev.at, &ev.kind, plan, rec, p.record_spans);
                changed = true;
            }
        }
        if changed {
            self.rebuild_unstarted(ev.at);
        }
    }

    /// Interrupts the attempt in progress on slot `v` at `t`, if any:
    /// bounded retry in place, then FIFO reflow of everything queued
    /// behind it. Returns whether any schedule changed.
    fn disrupt<R: Recorder>(
        &mut self,
        v: usize,
        t: u64,
        kind: &FaultKind,
        plan: &FaultPlan,
        rec: &mut R,
        spans: bool,
    ) -> bool {
        let Some(k) = self.slots[v]
            .queue
            .iter()
            .position(|j| j.attempt_start <= t && t < j.end)
        else {
            return false;
        };
        rec.add(names::FAULT_HITS, 1);
        let failed;
        {
            let job = &mut self.slots[v].queue[k];
            let lost = t - job.attempt_start;
            rec.add(names::FAULT_LOST_CYCLES, lost);
            if spans {
                let kn = kind.name();
                rec.span(|| format!("fault/{kn}"), job.attempt_start, t);
            }
            if job.first_start.is_none() {
                job.first_start = Some(job.attempt_start);
            }
            job.attempts += 1;
            failed = job.attempts > plan.max_retries;
            if !failed {
                rec.add(names::FAULT_RETRIES, 1);
                job.attempt_start = t;
                job.end = t + job.len;
            }
            self.lost += lost;
        }
        if failed {
            let job = self.slots[v].queue.remove(k).expect("index in range");
            self.fail(job, t);
            let prev_end = if k == 0 {
                t
            } else {
                self.slots[v].queue[k - 1].end
            };
            self.reflow(v, k, prev_end);
        } else {
            let prev_end = self.slots[v].queue[k].end;
            self.reflow(v, k + 1, prev_end);
        }
        true
    }

    /// Recomputes the FIFO chain of slot `v` from queue position `from`,
    /// following a shifted predecessor ending at `prev_end`.
    fn reflow(&mut self, v: usize, from: usize, mut prev_end: u64) {
        for job in self.slots[v].queue.iter_mut().skip(from) {
            let start = prev_end.max(job.arrival);
            job.attempt_start = start;
            job.end = start + job.len;
            prev_end = job.end;
        }
        self.slots[v].free_at = self.slots[v]
            .queue
            .back()
            .map(|j| j.end)
            .unwrap_or(prev_end);
    }

    /// Removes the last slot (quarantine shrank the carve window) and
    /// migrates its residents onto the surviving slots, restarting any
    /// in-progress attempt.
    fn evict_last<R: Recorder>(
        &mut self,
        t: u64,
        kind: &FaultKind,
        plan: &FaultPlan,
        rec: &mut R,
        spans: bool,
    ) {
        let mut slot = self.slots.pop().expect("capacity is at least one");
        while let Some(mut job) = slot.queue.pop_front() {
            rec.add(names::FAULT_EVICTIONS, 1);
            if job.attempt_start <= t {
                // The active attempt loses its work.
                let lost = t - job.attempt_start;
                self.lost += lost;
                rec.add(names::FAULT_LOST_CYCLES, lost);
                if spans {
                    let kn = kind.name();
                    rec.span(|| format!("fault/{kn}"), job.attempt_start, t);
                }
                if job.first_start.is_none() {
                    job.first_start = Some(job.attempt_start);
                }
                job.attempts += 1;
                if job.attempts > plan.max_retries {
                    self.fail(job, t);
                    continue;
                }
                rec.add(names::FAULT_RETRIES, 1);
            }
            let j = self.argmin_free();
            let start = t.max(self.slots[j].free_at).max(job.arrival);
            job.attempt_start = start;
            job.end = start + job.len;
            self.slots[j].free_at = job.end;
            self.slots[j].queue.push_back(job);
        }
    }

    /// Re-derives the unstarted-start heap after schedules shifted at `t`.
    fn rebuild_unstarted(&mut self, t: u64) {
        self.unstarted.clear();
        for slot in &self.slots {
            for job in &slot.queue {
                if job.first_start.is_none() && job.attempt_start > t {
                    self.unstarted.push(Reverse(job.attempt_start));
                }
            }
        }
    }
}

fn kind_counter(kind: &FaultKind) -> &'static str {
    match kind {
        FaultKind::PeRect { .. } => names::FAULT_INJECTED_PE,
        FaultKind::SpmBank { .. } => names::FAULT_INJECTED_SPM,
        FaultKind::NocLane { .. } => names::FAULT_INJECTED_NOC,
        FaultKind::DmaEngine { .. } => names::FAULT_INJECTED_DMA,
        FaultKind::DramChannel => names::FAULT_INJECTED_DRAM,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocha_core::Objective;
    use mocha_obs::{MemRecorder, NoopRecorder};
    use mocha_runtime::{JobSpec, Priority};

    fn req(arrival: u64, deadline: Option<u64>) -> Request {
        Request {
            arrival,
            tenant: 0,
            deadline,
            spec: JobSpec {
                network: "tiny".into(),
                profile: "nominal".into(),
                objective: Objective::Edp,
                priority: Priority::Normal,
                seed: 1,
            },
        }
    }

    fn params(fabric: &FabricConfig, shed: ShedPolicy) -> OpenLoopParams<'_> {
        OpenLoopParams {
            fabric,
            slots: 4,
            shed,
            faults: None,
            record_spans: false,
        }
    }

    /// `n` arrivals every `gap` cycles, all with service `len`.
    fn trace(n: usize, gap: u64, deadline: Option<u64>) -> (Vec<Request>, Vec<u64>) {
        let reqs: Vec<Request> = (0..n).map(|i| req(i as u64 * gap, deadline)).collect();
        let services = vec![1_000u64; n];
        (reqs, services)
    }

    #[test]
    fn light_load_completes_everything_without_waiting() {
        let fabric = FabricConfig::mocha_quad();
        let (reqs, svc) = trace(16, 2_000, Some(5_000));
        let (r, outs) = run_open_loop(
            &params(&fabric, ShedPolicy::None),
            &reqs,
            &svc,
            &mut NoopRecorder,
        );
        assert_eq!((r.admitted, r.shed, r.completed, r.failed), (16, 0, 16, 0));
        assert_eq!(r.in_slo, 16);
        assert_eq!(r.mean_queue_wait, 0.0);
        assert_eq!(r.latency_percentile(99.0), 1_000);
        assert!(outs
            .iter()
            .all(|o| matches!(o, RequestOutcome::Done { .. })));
    }

    #[test]
    fn runs_are_deterministic_and_conserve_requests() {
        let fabric = FabricConfig::mocha_quad();
        let (reqs, svc) = trace(500, 120, Some(3_000));
        for shed in [ShedPolicy::None, ShedPolicy::Queue(4), ShedPolicy::Deadline] {
            let p = params(&fabric, shed);
            let mut rec_a = MemRecorder::new();
            let mut rec_b = MemRecorder::new();
            let (a, outs) = run_open_loop(&p, &reqs, &svc, &mut rec_a);
            let (b, _) = run_open_loop(&p, &reqs, &svc, &mut rec_b);
            assert_eq!(a, b);
            assert_eq!(rec_a.to_jsonl(), rec_b.to_jsonl());
            assert_eq!(a.offered, a.admitted + a.shed, "{shed:?}");
            assert_eq!(a.admitted, a.completed + a.failed, "{shed:?}");
            let shed_n = outs
                .iter()
                .filter(|o| matches!(o, RequestOutcome::Shed))
                .count();
            assert_eq!(shed_n, a.shed);
        }
    }

    #[test]
    fn deadline_shedding_only_completes_in_slo_work() {
        let fabric = FabricConfig::mocha_quad();
        let (reqs, svc) = trace(400, 100, Some(2_500));
        let (r, _) = run_open_loop(
            &params(&fabric, ShedPolicy::Deadline),
            &reqs,
            &svc,
            &mut NoopRecorder,
        );
        assert!(r.shed > 0, "overload must shed");
        assert_eq!(r.deadline_misses, 0, "admitted work meets its deadline");
        assert_eq!(r.in_slo, r.completed);
    }

    #[test]
    fn past_saturation_shedding_beats_unbounded_queueing() {
        let fabric = FabricConfig::mocha_quad();
        // 4 slots x 1000-cycle service, arrivals every 100 cycles: offered
        // ~2.5x capacity with a 3000-cycle SLO.
        let (reqs, svc) = trace(2_000, 100, Some(3_000));
        let (none, _) = run_open_loop(
            &params(&fabric, ShedPolicy::None),
            &reqs,
            &svc,
            &mut NoopRecorder,
        );
        let (shed, _) = run_open_loop(
            &params(&fabric, ShedPolicy::Deadline),
            &reqs,
            &svc,
            &mut NoopRecorder,
        );
        assert!(
            shed.goodput_per_mcycle() > 2.0 * none.goodput_per_mcycle(),
            "goodput {} vs {}",
            shed.goodput_per_mcycle(),
            none.goodput_per_mcycle()
        );
        assert!(
            shed.latency_percentile(99.0) < none.latency_percentile(99.0) / 4,
            "p99 {} vs {}",
            shed.latency_percentile(99.0),
            none.latency_percentile(99.0)
        );
    }

    #[test]
    fn bounded_queue_bounds_observed_depth() {
        let fabric = FabricConfig::mocha_quad();
        let (reqs, svc) = trace(600, 50, None);
        let mut rec = MemRecorder::new();
        let (r, _) = run_open_loop(
            &params(&fabric, ShedPolicy::Queue(3)),
            &reqs,
            &svc,
            &mut rec,
        );
        assert!(r.shed > 0);
        let depth = rec.hist(names::HIST_SERVE_QUEUE_DEPTH).expect("recorded");
        let max = depth.max().unwrap_or(0);
        assert!(max <= 3, "observed depth {max}");
    }

    #[test]
    fn faults_shrink_capacity_and_conservation_still_holds() {
        let fabric = FabricConfig::mocha_quad();
        let plan = FaultPlan::parse("rate=40,seed=5,transient=0.2").unwrap();
        let (reqs, svc) = trace(800, 300, Some(6_000));
        let p = OpenLoopParams {
            fabric: &fabric,
            slots: 4,
            shed: ShedPolicy::Deadline,
            faults: Some(&plan),
            record_spans: false,
        };
        let mut rec = MemRecorder::new();
        let (r, _) = run_open_loop(&p, &reqs, &svc, &mut rec);
        assert!(r.faults_injected > 0);
        assert!(r.quarantined > 0, "permanent faults quarantine");
        assert!(r.lost_cycles > 0, "interrupted attempts lose work");
        assert_eq!(r.offered, r.admitted + r.shed);
        assert_eq!(r.admitted, r.completed + r.failed);
        assert_eq!(rec.counter(names::FAULT_QUARANTINED), r.quarantined as u64);
        // Same plan, same trace: byte-identical.
        let mut rec2 = MemRecorder::new();
        let (r2, _) = run_open_loop(&p, &reqs, &svc, &mut rec2);
        assert_eq!(r, r2);
        assert_eq!(rec.to_jsonl(), rec2.to_jsonl());
    }

    #[test]
    fn spans_cover_completions_and_lost_work() {
        let fabric = FabricConfig::mocha_quad();
        let plan = FaultPlan::parse("rate=25,seed=3,transient=0.8").unwrap();
        let (reqs, svc) = trace(60, 400, None);
        let p = OpenLoopParams {
            fabric: &fabric,
            slots: 4,
            shed: ShedPolicy::None,
            faults: Some(&plan),
            record_spans: true,
        };
        let mut rec = MemRecorder::new();
        let (r, _) = run_open_loop(&p, &reqs, &svc, &mut rec);
        let jobs = rec
            .spans()
            .iter()
            .filter(|s| s.path.starts_with("job/"))
            .count();
        assert_eq!(jobs, r.completed);
        if r.lost_cycles > 0 {
            assert!(rec.spans().iter().any(|s| s.path.starts_with("fault/")));
        }
    }
}
