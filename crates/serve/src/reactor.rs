//! A deterministic poll-style TCP reactor: many concurrent clients, one
//! thread, no async runtime.
//!
//! The reactor multiplexes connections with non-blocking `std` sockets and
//! a readiness sweep — accept everything pending, read everything readable,
//! then hand *all* batches that completed this round to the
//! [`BatchHandler`] in one call, ordered by accept sequence. That single
//! call site is what makes cross-client batching possible (the handler
//! sees concurrent clients' requests together and can merge them into one
//! runtime batch) and what keeps the server deterministic: batch contents
//! depend only on which requests each client sent, never on poll timing —
//! arrival interleaving affects *grouping* across rounds, but each
//! client's own batch, and the handler's per-client responses, are a pure
//! function of that client's lines.
//!
//! Connections follow the one-shot JSON-lines protocol of
//! [`crate::protocol`]: lines accumulate until a blank/whitespace-only
//! terminator (or EOF), the handler's response is written back, and the
//! connection closes. Oversized lines short-circuit to
//! [`BatchHandler::protocol_error`] without unbounded buffering.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use crate::protocol::{pop_line, LineRead, MAX_LINE_BYTES};

/// One client's completed request batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientBatch {
    /// Accept-order connection id (0-based, monotonic).
    pub client: u64,
    /// The batch's request lines, terminator excluded.
    pub lines: Vec<String>,
}

/// Reactor tuning.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Return after the first round that handles at least one batch
    /// (`serve --once`: smoke tests and goldens).
    pub once: bool,
    /// Per-line byte cap ([`MAX_LINE_BYTES`] by default).
    pub line_cap: usize,
    /// Sleep when a sweep makes no progress, to avoid spinning.
    pub idle: Duration,
    /// Checked after every received line: returning `true` completes the
    /// batch immediately, without waiting for a terminator. Lets one-line
    /// query protocols (the `stats` snapshot) answer clients that keep
    /// their write side open.
    pub complete_early: Option<fn(&[String]) -> bool>,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            once: false,
            line_cap: MAX_LINE_BYTES,
            idle: Duration::from_millis(1),
            complete_early: None,
        }
    }
}

/// What the reactor drives: batch execution and protocol-error rendering.
pub trait BatchHandler {
    /// Handles every batch that completed this readiness round, ordered by
    /// accept sequence. Returns one response per batch (same order); each
    /// response is written verbatim to its client, which is then closed.
    fn handle(&mut self, batches: &[ClientBatch]) -> Vec<String>;

    /// Renders a protocol error (oversized line) as the one-line response
    /// for a misbehaving client.
    fn protocol_error(&mut self, msg: &str) -> String;
}

enum State {
    Reading,
    Complete,
    Errored(String),
}

struct Conn {
    id: u64,
    stream: TcpStream,
    buf: Vec<u8>,
    lines: Vec<String>,
    state: State,
}

impl Conn {
    /// Drains complete lines out of the receive buffer until the batch
    /// terminator, a protocol error, or the buffer runs dry.
    fn drain_lines(&mut self, cfg: &ReactorConfig) {
        while matches!(self.state, State::Reading) {
            match pop_line(&mut self.buf, cfg.line_cap) {
                Ok(Some(LineRead::Line(l))) => {
                    self.lines.push(l);
                    if cfg.complete_early.is_some_and(|f| f(&self.lines)) {
                        self.state = State::Complete;
                    }
                }
                Ok(Some(LineRead::Terminator)) => self.state = State::Complete,
                Ok(Some(LineRead::Eof)) | Ok(None) => break,
                Err(e) => self.state = State::Errored(e),
            }
        }
    }

    /// Reads whatever is currently available. Returns whether any bytes
    /// arrived (progress accounting for the idle sleep).
    fn pump(&mut self, cfg: &ReactorConfig) -> bool {
        let cap = cfg.line_cap;
        let mut progressed = false;
        let mut chunk = [0u8; 4096];
        while matches!(self.state, State::Reading) {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // EOF closes the final (possibly unterminated) line and
                    // the batch, same as the stdin reader.
                    if !self.buf.is_empty() {
                        if self.buf.len() > cap {
                            self.state =
                                State::Errored(format!("request line exceeds {cap} bytes"));
                        } else {
                            let text = String::from_utf8_lossy(&self.buf).into_owned();
                            if !text.trim().is_empty() {
                                self.lines.push(text);
                            }
                            self.buf.clear();
                        }
                    }
                    if matches!(self.state, State::Reading) {
                        self.state = State::Complete;
                    }
                    progressed = true;
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    self.drain_lines(cfg);
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.state = State::Errored(format!("read error: {e}"));
                    progressed = true;
                }
            }
        }
        progressed
    }

    fn finished(&self) -> bool {
        !matches!(self.state, State::Reading)
    }
}

/// Writes a response and closes the connection. Best-effort: a client that
/// already disappeared is simply dropped.
fn respond(mut stream: TcpStream, response: &str) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Runs the reactor loop on `listener` until `cfg.once` completes a round
/// (or forever otherwise). Only listener-level failures are hard errors;
/// per-connection failures drop that connection.
pub fn serve_reactor<H: BatchHandler>(
    listener: TcpListener,
    cfg: &ReactorConfig,
    handler: &mut H,
) -> Result<(), String> {
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("listener error: {e}"))?;
    let mut conns: Vec<Conn> = Vec::new();
    let mut next_id = 0u64;
    loop {
        let mut progressed = false;

        // Accept everything pending.
        loop {
            match listener.accept() {
                Ok((stream, peer)) => {
                    eprintln!("batch from {peer}");
                    if let Err(e) = stream.set_nonblocking(true) {
                        eprintln!("dropping {peer}: {e}");
                        continue;
                    }
                    conns.push(Conn {
                        id: next_id,
                        stream,
                        buf: Vec::new(),
                        lines: Vec::new(),
                        state: State::Reading,
                    });
                    next_id += 1;
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(format!("accept error: {e}")),
            }
        }

        // Read sweep.
        for conn in conns.iter_mut() {
            progressed |= conn.pump(cfg);
        }

        // Collect this round's finished connections, accept order.
        let mut round: Vec<Conn> = Vec::new();
        let mut i = 0;
        while i < conns.len() {
            if conns[i].finished() {
                round.push(conns.remove(i));
            } else {
                i += 1;
            }
        }
        if !round.is_empty() {
            round.sort_by_key(|c| c.id);
            let mut ok: Vec<Conn> = Vec::new();
            for conn in round {
                match conn.state {
                    State::Errored(ref msg) => {
                        let resp = handler.protocol_error(msg);
                        respond(conn.stream, &resp);
                    }
                    _ => ok.push(conn),
                }
            }
            if !ok.is_empty() {
                let batches: Vec<ClientBatch> = ok
                    .iter()
                    .map(|c| ClientBatch {
                        client: c.id,
                        lines: c.lines.clone(),
                    })
                    .collect();
                let responses = handler.handle(&batches);
                debug_assert_eq!(responses.len(), batches.len());
                for (conn, resp) in ok.into_iter().zip(responses) {
                    respond(conn.stream, &resp);
                }
            }
            if cfg.once {
                return Ok(());
            }
            progressed = true;
        }

        if !progressed {
            std::thread::sleep(cfg.idle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl BatchHandler for Echo {
        fn handle(&mut self, batches: &[ClientBatch]) -> Vec<String> {
            batches
                .iter()
                .map(|b| format!("lines={}\n", b.lines.len()))
                .collect()
        }
        fn protocol_error(&mut self, msg: &str) -> String {
            format!("error: {msg}\n")
        }
    }

    fn spawn_reactor(cfg: ReactorConfig) -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || serve_reactor(listener, &cfg, &mut Echo).unwrap());
        addr
    }

    #[test]
    fn interleaved_clients_each_get_their_own_batch() {
        let addr = spawn_reactor(ReactorConfig::default());
        let mut a = TcpStream::connect(addr).unwrap();
        let mut b = TcpStream::connect(addr).unwrap();
        // A starts a batch but stalls; B completes first.
        a.write_all(b"{\"n\":1}\n").unwrap();
        b.write_all(b"{\"n\":2}\n{\"n\":3}\n\n").unwrap();
        let mut resp_b = String::new();
        b.read_to_string(&mut resp_b).unwrap();
        assert_eq!(resp_b, "lines=2\n", "B's two lines, despite A stalling");
        // A finishes afterwards and still reconciles.
        a.write_all(b"{\"n\":4}\n\n").unwrap();
        let mut resp_a = String::new();
        a.read_to_string(&mut resp_a).unwrap();
        assert_eq!(resp_a, "lines=2\n");
    }

    #[test]
    fn eof_without_terminator_closes_the_batch() {
        let addr = spawn_reactor(ReactorConfig::default());
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"{\"n\":1}\n{\"n\":2}").unwrap(); // no \n, no terminator
        c.shutdown(std::net::Shutdown::Write).unwrap();
        let mut resp = String::new();
        c.read_to_string(&mut resp).unwrap();
        assert_eq!(resp, "lines=2\n");
    }

    #[test]
    fn oversized_lines_get_a_protocol_error() {
        let addr = spawn_reactor(ReactorConfig {
            line_cap: 16,
            ..ReactorConfig::default()
        });
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx\n").unwrap();
        let mut resp = String::new();
        c.read_to_string(&mut resp).unwrap();
        assert_eq!(resp, "error: request line exceeds 16 bytes\n");
    }

    #[test]
    fn complete_early_answers_without_a_terminator() {
        let addr = spawn_reactor(ReactorConfig {
            complete_early: Some(|lines: &[String]| {
                lines.first().map(String::as_str) == Some("query")
            }),
            ..ReactorConfig::default()
        });
        let mut c = TcpStream::connect(addr).unwrap();
        // No terminator and the write side stays open: the predicate must
        // complete the batch on its own.
        c.write_all(b"query\n").unwrap();
        let mut resp = String::new();
        c.read_to_string(&mut resp).unwrap();
        assert_eq!(resp, "lines=1\n");
    }

    #[test]
    fn once_returns_after_the_first_handled_round() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let cfg = ReactorConfig {
            once: true,
            ..ReactorConfig::default()
        };
        let join = std::thread::spawn(move || serve_reactor(listener, &cfg, &mut Echo));
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"{\"n\":1}\n\n").unwrap();
        let mut resp = String::new();
        c.read_to_string(&mut resp).unwrap();
        assert_eq!(resp, "lines=1\n");
        join.join().unwrap().unwrap();
    }
}
