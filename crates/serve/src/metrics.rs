//! Feeds serving-tier and runtime outcomes into the windowed telemetry
//! layer ([`mocha_obs::WindowedMetrics`]).
//!
//! The simulators themselves stay telemetry-free: they already report
//! *when* everything happened (arrival, first start, finish, fault
//! cycles), so windowing is a pure post-processing pass over those
//! timestamps. That keeps the hot loops untouched and makes the windowed
//! view trivially deterministic — the same outcomes always produce the
//! same windows, regardless of thread count or cache state.
//!
//! Dimensional labels follow the ISSUE contract: `tenant` and `template`
//! on request-scoped counters, `reason` on sheds, `kind` on fault
//! injections, with latency/wait histograms carrying `template` only so
//! per-template tails stay cheap to aggregate.

use mocha_obs::names;
use mocha_obs::{WindowSpec, WindowedMetrics};
use mocha_runtime::RuntimeReport;

use crate::openloop::RequestOutcome;
use crate::shed::ShedPolicy;
use crate::traffic::Request;

/// Windows an open-loop run: one pass over the per-request outcomes and
/// the fault log. SLO tracking switches on iff any request carries a
/// deadline; sheds and fault-failures count as SLO errors, completions
/// split into good/miss against each request's own deadline.
pub fn windows_from_open_loop(
    spec: WindowSpec,
    requests: &[Request],
    outcomes: &[RequestOutcome],
    fault_log: &[(u64, &'static str)],
    policy: ShedPolicy,
) -> WindowedMetrics {
    assert_eq!(requests.len(), outcomes.len(), "one outcome per request");
    let mut m = WindowedMetrics::new(spec);
    let has_slo = requests.iter().any(|r| r.deadline.is_some());
    if has_slo {
        m.enable_slo();
    }
    let reason = policy.reason();
    for (req, out) in requests.iter().zip(outcomes) {
        let tenant = req.tenant.to_string();
        let dims = m
            .windows
            .intern(&[("tenant", &tenant), ("template", &req.spec.network)]);
        let tmpl = m.windows.intern(&[("template", &req.spec.network)]);
        m.windows
            .add_at(names::SERVE_REQUESTS, dims, req.arrival, 1);
        match *out {
            RequestOutcome::Shed => {
                let shed = m.windows.intern(&[
                    ("tenant", &tenant),
                    ("template", &req.spec.network),
                    ("reason", reason),
                ]);
                m.windows.add_at(names::SERVE_SHED, shed, req.arrival, 1);
                if let Some(slo) = m.slo.as_mut() {
                    slo.error(spec.cell(req.arrival), 1);
                }
            }
            RequestOutcome::Done { start, finish } => {
                m.windows
                    .add_at(names::SERVE_ADMITTED, dims, req.arrival, 1);
                m.windows.add_at(names::SERVE_COMPLETED, dims, finish, 1);
                m.windows
                    .sample_at(names::HIST_JOB_LATENCY, tmpl, finish, finish - req.arrival);
                m.windows
                    .sample_at(names::HIST_QUEUE_WAIT, tmpl, finish, start - req.arrival);
                if let Some(deadline) = req.deadline {
                    let in_slo = finish - req.arrival <= deadline;
                    let name = if in_slo {
                        names::SERVE_IN_SLO
                    } else {
                        names::SERVE_DEADLINE_MISSES
                    };
                    m.windows.add_at(name, dims, finish, 1);
                    let slo = m.slo.as_mut().expect("deadline implies tracker");
                    if in_slo {
                        slo.good(spec.cell(finish), 1);
                    } else {
                        slo.miss(spec.cell(finish), 1);
                    }
                }
            }
            RequestOutcome::Failed { at } => {
                m.windows
                    .add_at(names::SERVE_ADMITTED, dims, req.arrival, 1);
                m.windows.add_at(names::SERVE_FAILED, dims, at, 1);
                if let Some(slo) = m.slo.as_mut() {
                    slo.error(spec.cell(at), 1);
                }
            }
        }
    }
    for &(at, kind) in fault_log {
        let labels = m.windows.intern(&[("kind", kind)]);
        m.windows.add_at(names::FAULT_INJECTED, labels, at, 1);
    }
    m
}

/// Windows a runtime report: admissions at arrival, completions (with
/// latency/wait histograms and re-morph counts) at finish, all labelled by
/// network template. The runtime has no deadlines, so no SLO tracker.
pub fn windows_from_runtime(spec: WindowSpec, report: &RuntimeReport) -> WindowedMetrics {
    let mut m = WindowedMetrics::new(spec);
    for job in &report.jobs {
        let tmpl = m.windows.intern(&[("template", &job.spec.network)]);
        m.windows
            .add_at(names::RUNTIME_JOBS_ADMITTED, tmpl, job.arrival, 1);
        m.windows
            .add_at(names::RUNTIME_JOBS_FINISHED, tmpl, job.finished, 1);
        if job.remorphs > 0 {
            m.windows.add_at(
                names::RUNTIME_REMORPHS,
                tmpl,
                job.finished,
                job.remorphs as u64,
            );
        }
        m.windows.sample_at(
            names::HIST_JOB_LATENCY,
            tmpl,
            job.finished,
            job.finished - job.arrival,
        );
        m.windows.sample_at(
            names::HIST_QUEUE_WAIT,
            tmpl,
            job.finished,
            job.admitted - job.arrival,
        );
    }
    m.windows.observe_cycle(report.horizon);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::openloop::{run_open_loop, OpenLoopParams};
    use mocha_core::Objective;
    use mocha_fabric::FabricConfig;
    use mocha_obs::NoopRecorder;
    use mocha_runtime::{JobSpec, Priority};

    /// `n` arrivals every `gap` cycles across three tenants/templates, all
    /// with service 1000 cycles.
    fn trace(n: usize, gap: u64, deadline: Option<u64>) -> (Vec<Request>, Vec<u64>) {
        let reqs: Vec<Request> = (0..n)
            .map(|i| Request {
                arrival: i as u64 * gap + 1,
                tenant: (i % 3) as u64,
                deadline,
                spec: JobSpec {
                    network: if i % 3 == 0 { "tiny" } else { "lenet5" }.to_string(),
                    profile: "nominal".into(),
                    objective: Objective::Edp,
                    priority: Priority::Normal,
                    seed: i as u64,
                },
            })
            .collect();
        (reqs, vec![1_000u64; n])
    }

    fn run(
        shed: ShedPolicy,
        gap: u64,
    ) -> (Vec<Request>, Vec<RequestOutcome>, Vec<(u64, &'static str)>) {
        let fabric = FabricConfig::mocha_quad();
        let (reqs, svc) = trace(160, gap, Some(3_000));
        let p = OpenLoopParams {
            fabric: &fabric,
            slots: 2,
            shed,
            faults: None,
            record_spans: false,
        };
        let (report, outs) = run_open_loop(&p, &reqs, &svc, &mut NoopRecorder);
        (reqs, outs, report.fault_log)
    }

    #[test]
    fn open_loop_windows_conserve_request_counts() {
        let (reqs, outs, faults) = run(ShedPolicy::Deadline, 120);
        let spec = WindowSpec::tumbling(5_000);
        let m = windows_from_open_loop(spec, &reqs, &outs, &faults, ShedPolicy::Deadline);
        assert_eq!(
            m.windows.counter_total(names::SERVE_REQUESTS),
            reqs.len() as u64
        );
        let shed = outs
            .iter()
            .filter(|o| matches!(o, RequestOutcome::Shed))
            .count() as u64;
        let done = outs
            .iter()
            .filter(|o| matches!(o, RequestOutcome::Done { .. }))
            .count() as u64;
        assert_eq!(m.windows.counter_total(names::SERVE_SHED), shed);
        assert_eq!(m.windows.counter_total(names::SERVE_COMPLETED), done);
        assert_eq!(
            m.windows.counter_total(names::SERVE_ADMITTED),
            reqs.len() as u64 - shed
        );
        assert_eq!(m.windows.merged_hist(names::HIST_JOB_LATENCY).count(), done);
        assert_eq!(
            m.windows.counter_total(names::SERVE_IN_SLO)
                + m.windows.counter_total(names::SERVE_DEADLINE_MISSES),
            done
        );
        assert!(m.slo.is_some(), "deadlines imply SLO tracking");
    }

    #[test]
    fn slo_tracker_absent_without_deadlines() {
        let fabric = FabricConfig::mocha_quad();
        let (reqs, svc) = trace(40, 2_000, None);
        let p = OpenLoopParams {
            fabric: &fabric,
            slots: 2,
            shed: ShedPolicy::None,
            faults: None,
            record_spans: false,
        };
        let (report, outs) = run_open_loop(&p, &reqs, &svc, &mut NoopRecorder);
        let m = windows_from_open_loop(
            WindowSpec::tumbling(5_000),
            &reqs,
            &outs,
            &report.fault_log,
            ShedPolicy::None,
        );
        assert!(m.slo.is_none());
        assert_eq!(m.windows.counter_total(names::SERVE_SHED), 0);
    }

    #[test]
    fn overload_burns_budget_faster_than_light_load() {
        // With 2 slots and 1000-cycle services, a 2000-cycle gap keeps
        // everything in SLO; a 100-cycle gap drowns the queue in deadline
        // misses. The slow burn window must see the difference.
        let spec = WindowSpec::tumbling(5_000);
        let (lr, lo, lf) = run(ShedPolicy::None, 2_000);
        let light = windows_from_open_loop(spec, &lr, &lo, &lf, ShedPolicy::None);
        let (hr, ho, hf) = run(ShedPolicy::None, 100);
        let heavy = windows_from_open_loop(spec, &hr, &ho, &hf, ShedPolicy::None);
        let (_, light_slow) = light.peak_burn();
        let (_, heavy_slow) = heavy.peak_burn();
        assert!(
            heavy_slow > light_slow,
            "overload must burn faster: {heavy_slow} vs {light_slow}"
        );
        assert!(heavy.alerts() > 0, "sustained misses must raise an alert");
    }

    #[test]
    fn feeding_is_deterministic() {
        let (reqs, outs, faults) = run(ShedPolicy::Deadline, 120);
        let spec = WindowSpec::parse("rolling:20000/5000").unwrap();
        let a = windows_from_open_loop(spec, &reqs, &outs, &faults, ShedPolicy::Deadline);
        let b = windows_from_open_loop(spec, &reqs, &outs, &faults, ShedPolicy::Deadline);
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a.exposition(), b.exposition());
        assert_eq!(
            a.snapshot_json().to_string_compact(),
            b.snapshot_json().to_string_compact()
        );
    }
}
