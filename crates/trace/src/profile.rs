//! The distilled profile: everything `trace summary` prints, `trace diff`
//! compares, and ci.sh pins as a baseline, in one flat JSON-serializable
//! struct. The JSON form carries the `mocha_trace_profile` marker so the
//! CLI can tell a saved profile from a raw event stream, and attojoule
//! totals are serialized as decimal strings (u128 does not fit in a JSON
//! number losslessly).

use crate::energy::{Attribution, PhaseEnergy};
use crate::tree::{CriticalPath, LaneCycles, SpanTree};
use crate::Stream;
use mocha_energy::EnergyTable;
use mocha_json::Value;

/// Marker key identifying a serialized profile (value: format version).
pub const PROFILE_MARKER: &str = "mocha_trace_profile";

/// Nearest-rank percentile of an ascending-sorted sample (0 when empty).
fn nearest_rank(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len() as u64).div_ceil(100).max(1);
    sorted[(rank - 1) as usize]
}

/// Per-layer-group row of the profile.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRow {
    /// Group name (layer names joined with `+`).
    pub name: String,
    /// Summed makespan cycles over the group's executions.
    pub cycles: u64,
    /// Critical-path stall cycles summed over executions.
    pub stall: u64,
    /// Pipeline overlap efficiency of the group's executions.
    pub overlap: f64,
    /// Attributed energy in attojoules.
    pub energy_aj: u128,
}

/// One per-window tail-latency row, from the empty-label (aggregate)
/// `runtime.latency_cycles` window histograms of a `--metrics` export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowTail {
    /// Window index.
    pub window: u64,
    /// Completions in the window.
    pub count: u64,
    /// Median latency, cycles.
    pub p50: u64,
    /// 95th percentile latency.
    pub p95: u64,
    /// 99th percentile latency.
    pub p99: u64,
}

/// SLO burn summary of a windowed export.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloProfile {
    /// Rising-edge burn alerts over the run.
    pub alerts: u64,
    /// Peak fast-window burn rate.
    pub burn_peak_fast: f64,
    /// Peak slow-window burn rate.
    pub burn_peak_slow: f64,
}

/// One per-shard tail row of a fleet stream, from `fleet/shard<s>/job/*`
/// residency spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTail {
    /// Shard index.
    pub shard: u64,
    /// Requests that completed on this shard.
    pub jobs: u64,
    /// Median in-service residency, cycles.
    pub p50: u64,
    /// 95th percentile residency.
    pub p95: u64,
    /// 99th percentile residency.
    pub p99: u64,
}

/// The fleet view of a profile — present only when the stream carries
/// `fleet.*` telemetry (a `mocha-sim fleet` or `serve --fleet` run).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetProfile {
    /// Shards the fleet router started with (`fleet.shards`).
    pub shards: u64,
    /// Requests routed (`fleet.routed`).
    pub routed: u64,
    /// Quarantine-triggered cross-shard migrations (`fleet.rebalanced`).
    pub rebalanced: u64,
    /// Per-shard residency tails, sorted by shard index (empty when the
    /// stream has no per-shard job spans, e.g. span-capped runs).
    pub tail: Vec<ShardTail>,
}

/// The windowed-telemetry view of a profile — present only when the input
/// stream embeds a `--metrics` export (window/whist/slo events).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowProfile {
    /// Window width, cycles.
    pub width: u64,
    /// Window stride, cycles.
    pub stride: u64,
    /// Windows covered.
    pub count: u64,
    /// Per-window tail-latency rows, in window order.
    pub tail: Vec<WindowTail>,
    /// SLO burn summary (absent when the run carried no deadlines).
    pub slo: Option<SloProfile>,
}

/// A complete run profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Jobs observed (0 in single-tenant streams).
    pub jobs: u64,
    /// Fusion groups executed.
    pub groups: u64,
    /// Tiles executed.
    pub tiles: u64,
    /// Last cycle any span covers (horizon / total cycles).
    pub makespan: u64,
    /// Busy cycles per lane over all groups.
    pub busy: LaneCycles,
    /// Critical-path cycles over all groups.
    pub critical: CriticalPath,
    /// Aggregate overlap efficiency (busy lane cycles / group cycles).
    pub overlap: f64,
    /// Cycles with no group executing, and how many such gaps.
    pub idle_cycles: u64,
    /// Number of fabric idle gaps.
    pub idle_gaps: u64,
    /// Total DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// Total energy in pJ (the priced breakdown's total).
    pub energy_pj: f64,
    /// Exact per-phase energy in attojoules.
    pub phases: PhaseEnergy,
    /// Per layer group rows, in order of first execution.
    pub layers: Vec<LayerRow>,
    /// Job latency percentiles from `runtime.latency_cycles` (runtime
    /// streams only).
    pub latency: Option<(u64, u64, u64)>,
    /// Faults injected (`fault.injected`; 0 without fault injection).
    pub fault_events: u64,
    /// Executed-work cycles lost to faults (`fault.lost_cycles`).
    pub fault_lost_cycles: u64,
    /// Windowed telemetry (only when the stream embeds a `--metrics`
    /// export, so pre-telemetry profiles stay byte-identical).
    pub windowed: Option<WindowProfile>,
    /// Fleet telemetry (only when the stream carries `fleet.*` counters,
    /// so single-fabric profiles stay byte-identical).
    pub fleet: Option<FleetProfile>,
}

impl Profile {
    /// Distils a parsed stream + tree into a profile, pricing energy with
    /// `table` (must match the table the run was priced with).
    pub fn build(tree: &SpanTree, stream: &Stream, table: &EnergyTable) -> (Profile, Attribution) {
        let attribution = crate::energy::attribute(tree, stream, table);
        let stalls: std::collections::HashMap<&str, u64> = {
            let mut m: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
            for g in &tree.groups {
                *m.entry(g.name.as_str()).or_insert(0) += g.critical.stall;
            }
            m
        };
        let layers = attribution
            .layers
            .iter()
            .map(|l| {
                let busy: u64 = tree
                    .groups
                    .iter()
                    .filter(|g| g.name == l.name)
                    .map(|g| g.busy.total())
                    .sum();
                LayerRow {
                    name: l.name.clone(),
                    cycles: l.cycles,
                    stall: stalls.get(l.name.as_str()).copied().unwrap_or(0),
                    overlap: if l.cycles == 0 {
                        0.0
                    } else {
                        busy as f64 / l.cycles as f64
                    },
                    energy_aj: l.total_aj(),
                }
            })
            .collect();
        let profile = Profile {
            jobs: tree.jobs.len() as u64,
            groups: tree.groups.len() as u64,
            tiles: tree.tiles() as u64,
            makespan: tree.makespan,
            busy: tree.busy(),
            critical: tree.critical(),
            overlap: tree.overlap(),
            idle_cycles: tree.idle_cycles,
            idle_gaps: tree.idle_gaps.len() as u64,
            dram_bytes: attribution.counts.dram_bytes(),
            energy_pj: attribution.breakdown.total_pj(),
            phases: attribution.phases,
            layers,
            latency: stream
                .hists
                .get(mocha_obs::names::HIST_JOB_LATENCY)
                .map(|h| (h.p50, h.p95, h.p99)),
            fault_events: stream
                .counters
                .get(mocha_obs::names::FAULT_INJECTED)
                .copied()
                .unwrap_or(0),
            fault_lost_cycles: stream
                .counters
                .get(mocha_obs::names::FAULT_LOST_CYCLES)
                .copied()
                .unwrap_or(0),
            windowed: stream.window_spec.map(|meta| WindowProfile {
                width: meta.width,
                stride: meta.stride,
                count: meta.windows,
                tail: stream
                    .whists
                    .iter()
                    .filter(|h| h.name == mocha_obs::names::HIST_JOB_LATENCY && h.labels.is_empty())
                    .map(|h| WindowTail {
                        window: h.window,
                        count: h.summary.count,
                        p50: h.summary.p50,
                        p95: h.summary.p95,
                        p99: h.summary.p99,
                    })
                    .collect(),
                slo: (!stream.slo.is_empty()).then(|| SloProfile {
                    alerts: stream.slo.iter().filter(|r| r.alert).count() as u64,
                    burn_peak_fast: stream.slo.iter().map(|r| r.burn_fast).fold(0.0, f64::max),
                    burn_peak_slow: stream.slo.iter().map(|r| r.burn_slow).fold(0.0, f64::max),
                }),
            }),
            fleet: stream
                .counters
                .get(mocha_obs::names::FLEET_SHARDS)
                .map(|&shards| {
                    let mut by_shard: std::collections::BTreeMap<u64, Vec<u64>> =
                        std::collections::BTreeMap::new();
                    for j in &tree.shard_jobs {
                        by_shard.entry(j.shard).or_default().push(j.end - j.start);
                    }
                    FleetProfile {
                        shards,
                        routed: stream
                            .counters
                            .get(mocha_obs::names::FLEET_ROUTED)
                            .copied()
                            .unwrap_or(0),
                        rebalanced: stream
                            .counters
                            .get(mocha_obs::names::FLEET_REBALANCED)
                            .copied()
                            .unwrap_or(0),
                        tail: by_shard
                            .into_iter()
                            .map(|(shard, mut durations)| {
                                durations.sort_unstable();
                                ShardTail {
                                    shard,
                                    jobs: durations.len() as u64,
                                    p50: nearest_rank(&durations, 50),
                                    p95: nearest_rank(&durations, 95),
                                    p99: nearest_rank(&durations, 99),
                                }
                            })
                            .collect(),
                    }
                }),
        };
        (profile, attribution)
    }

    /// Serializes the profile (deterministic: `BTreeMap`-ordered keys,
    /// shortest round-trip float formatting).
    pub fn to_json(&self) -> Value {
        let mut v = mocha_json::jobj! {
            "mocha_trace_profile" => 1u64,
            "jobs" => self.jobs,
            "groups" => self.groups,
            "tiles" => self.tiles,
            "makespan" => self.makespan,
            "busy_load" => self.busy.load,
            "busy_compute" => self.busy.compute,
            "busy_store" => self.busy.store,
            "crit_load" => self.critical.load,
            "crit_compute" => self.critical.compute,
            "crit_store" => self.critical.store,
            "crit_stall" => self.critical.stall,
            "overlap" => self.overlap,
            "idle_cycles" => self.idle_cycles,
            "idle_gaps" => self.idle_gaps,
            "dram_bytes" => self.dram_bytes,
            "energy_pj" => self.energy_pj,
            "energy_load_aj" => self.phases.load_aj.to_string(),
            "energy_compute_aj" => self.phases.compute_aj.to_string(),
            "energy_store_aj" => self.phases.store_aj.to_string(),
            "energy_idle_aj" => self.phases.idle_aj.to_string(),
            "energy_unattributed_aj" => self.phases.unattributed_aj.to_string(),
            "layers" => self.layers.iter().map(|l| mocha_json::jobj! {
                "name" => l.name.as_str(),
                "cycles" => l.cycles,
                "stall" => l.stall,
                "overlap" => l.overlap,
                "energy_aj" => l.energy_aj.to_string(),
            }).collect::<Vec<_>>(),
        };
        if let Some((p50, p95, p99)) = self.latency {
            v = v
                .with("latency_p50", p50)
                .with("latency_p95", p95)
                .with("latency_p99", p99);
        }
        // Fault fields only appear when faults were injected, so zero-fault
        // profiles stay byte-identical to pre-fault-injection baselines.
        if self.fault_events > 0 || self.fault_lost_cycles > 0 {
            v = v
                .with("fault_events", self.fault_events)
                .with("fault_lost_cycles", self.fault_lost_cycles);
        }
        // Window fields likewise only appear for windowed streams.
        if let Some(w) = &self.windowed {
            v = v
                .with("windows", w.count)
                .with("window_width", w.width)
                .with("window_stride", w.stride)
                .with(
                    "window_latency",
                    w.tail
                        .iter()
                        .map(|t| {
                            mocha_json::jobj! {
                                "window" => t.window,
                                "count" => t.count,
                                "p50" => t.p50,
                                "p95" => t.p95,
                                "p99" => t.p99,
                            }
                        })
                        .collect::<Vec<_>>(),
                );
            if let Some(slo) = &w.slo {
                v = v
                    .with("slo_alerts", slo.alerts)
                    .with("slo_burn_peak_fast", slo.burn_peak_fast)
                    .with("slo_burn_peak_slow", slo.burn_peak_slow);
            }
        }
        // Fleet fields only appear for fleet streams, so single-fabric
        // profiles stay byte-identical to pre-fleet baselines.
        if let Some(fl) = &self.fleet {
            v = v
                .with("fleet_shards", fl.shards)
                .with("fleet_routed", fl.routed)
                .with("fleet_rebalanced", fl.rebalanced)
                .with(
                    "shard_latency",
                    fl.tail
                        .iter()
                        .map(|t| {
                            mocha_json::jobj! {
                                "shard" => t.shard,
                                "jobs" => t.jobs,
                                "p50" => t.p50,
                                "p95" => t.p95,
                                "p99" => t.p99,
                            }
                        })
                        .collect::<Vec<_>>(),
                );
        }
        v
    }

    /// Deserializes a profile saved by [`Self::to_json`].
    pub fn from_json(v: &Value) -> Result<Profile, String> {
        if v.get(PROFILE_MARKER).is_none() {
            return Err("not a mocha-trace profile (missing marker)".into());
        }
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("profile field {key:?} missing or not an integer"))
        };
        let f = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("profile field {key:?} missing or not a number"))
        };
        let aj = |val: &Value, key: &str| -> Result<u128, String> {
            val.get(key)
                .and_then(Value::as_str)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("profile field {key:?} missing or not a u128 string"))
        };
        let mut layers = Vec::new();
        for l in v.get("layers").and_then(Value::as_arr).unwrap_or(&[]) {
            layers.push(LayerRow {
                name: l
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("layer row missing name")?
                    .to_string(),
                cycles: l.get("cycles").and_then(Value::as_u64).unwrap_or(0),
                stall: l.get("stall").and_then(Value::as_u64).unwrap_or(0),
                overlap: l.get("overlap").and_then(Value::as_f64).unwrap_or(0.0),
                energy_aj: aj(l, "energy_aj")?,
            });
        }
        Ok(Profile {
            jobs: u("jobs")?,
            groups: u("groups")?,
            tiles: u("tiles")?,
            makespan: u("makespan")?,
            busy: LaneCycles {
                load: u("busy_load")?,
                compute: u("busy_compute")?,
                store: u("busy_store")?,
            },
            critical: CriticalPath {
                load: u("crit_load")?,
                compute: u("crit_compute")?,
                store: u("crit_store")?,
                stall: u("crit_stall")?,
            },
            overlap: f("overlap")?,
            idle_cycles: u("idle_cycles")?,
            idle_gaps: u("idle_gaps")?,
            dram_bytes: u("dram_bytes")?,
            energy_pj: f("energy_pj")?,
            phases: PhaseEnergy {
                load_aj: aj(v, "energy_load_aj")?,
                compute_aj: aj(v, "energy_compute_aj")?,
                store_aj: aj(v, "energy_store_aj")?,
                idle_aj: aj(v, "energy_idle_aj")?,
                unattributed_aj: aj(v, "energy_unattributed_aj")?,
            },
            layers,
            latency: match (
                v.get("latency_p50"),
                v.get("latency_p95"),
                v.get("latency_p99"),
            ) {
                (Some(a), Some(b), Some(c)) => match (a.as_u64(), b.as_u64(), c.as_u64()) {
                    (Some(a), Some(b), Some(c)) => Some((a, b, c)),
                    _ => return Err("latency percentiles are not integers".into()),
                },
                _ => None,
            },
            fault_events: v.get("fault_events").and_then(Value::as_u64).unwrap_or(0),
            fault_lost_cycles: v
                .get("fault_lost_cycles")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            windowed: match v.get("windows") {
                None => None,
                Some(_) => {
                    let mut tail = Vec::new();
                    for t in v
                        .get("window_latency")
                        .and_then(Value::as_arr)
                        .unwrap_or(&[])
                    {
                        let tu = |key: &str| -> Result<u64, String> {
                            t.get(key).and_then(Value::as_u64).ok_or_else(|| {
                                format!("window_latency field {key:?} missing or not an integer")
                            })
                        };
                        tail.push(WindowTail {
                            window: tu("window")?,
                            count: tu("count")?,
                            p50: tu("p50")?,
                            p95: tu("p95")?,
                            p99: tu("p99")?,
                        });
                    }
                    Some(WindowProfile {
                        width: u("window_width")?,
                        stride: u("window_stride")?,
                        count: u("windows")?,
                        tail,
                        slo: match v.get("slo_alerts") {
                            None => None,
                            Some(_) => Some(SloProfile {
                                alerts: u("slo_alerts")?,
                                burn_peak_fast: f("slo_burn_peak_fast")?,
                                burn_peak_slow: f("slo_burn_peak_slow")?,
                            }),
                        },
                    })
                }
            },
            fleet: match v.get("fleet_shards") {
                None => None,
                Some(_) => {
                    let mut tail = Vec::new();
                    for t in v
                        .get("shard_latency")
                        .and_then(Value::as_arr)
                        .unwrap_or(&[])
                    {
                        let tu = |key: &str| -> Result<u64, String> {
                            t.get(key).and_then(Value::as_u64).ok_or_else(|| {
                                format!("shard_latency field {key:?} missing or not an integer")
                            })
                        };
                        tail.push(ShardTail {
                            shard: tu("shard")?,
                            jobs: tu("jobs")?,
                            p50: tu("p50")?,
                            p95: tu("p95")?,
                            p99: tu("p99")?,
                        });
                    }
                    Some(FleetProfile {
                        shards: u("fleet_shards")?,
                        routed: u("fleet_routed")?,
                        rebalanced: u("fleet_rebalanced")?,
                        tail,
                    })
                }
            },
        })
    }

    /// The human-readable summary `trace summary` prints. Deterministic.
    pub fn summary_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let pct = |part: u128, whole: u128| -> f64 {
            if whole == 0 {
                0.0
            } else {
                100.0 * part as f64 / whole as f64
            }
        };
        let _ = writeln!(
            out,
            "{} job(s), {} group(s), {} tile(s), makespan {} cycles",
            self.jobs, self.groups, self.tiles, self.makespan
        );
        let _ = writeln!(
            out,
            "lanes: load {} | compute {} | store {} busy cycles, overlap {:.2}x",
            self.busy.load, self.busy.compute, self.busy.store, self.overlap
        );
        let _ = writeln!(
            out,
            "critical path: load {} | compute {} | store {} | stall {} cycles",
            self.critical.load, self.critical.compute, self.critical.store, self.critical.stall
        );
        let _ = writeln!(
            out,
            "fabric idle: {} cycles in {} gap(s) | DRAM {} bytes",
            self.idle_cycles, self.idle_gaps, self.dram_bytes
        );
        let total = self.phases.total_aj();
        let _ = writeln!(
            out,
            "energy: {:.3} uJ — load {:.1} % | compute {:.1} % | store {:.1} % | idle {:.1} %{}",
            self.energy_pj / 1e6,
            pct(self.phases.load_aj, total),
            pct(self.phases.compute_aj, total),
            pct(self.phases.store_aj, total),
            pct(self.phases.idle_aj, total),
            if self.phases.unattributed_aj > 0 {
                format!(
                    " | unattributed {:.1} %",
                    pct(self.phases.unattributed_aj, total)
                )
            } else {
                String::new()
            }
        );
        if let Some((p50, p95, p99)) = self.latency {
            let _ = writeln!(out, "job latency: p50 {p50} | p95 {p95} | p99 {p99} cycles");
        }
        if self.fault_events > 0 || self.fault_lost_cycles > 0 {
            let _ = writeln!(
                out,
                "faults: {} injected, {} executed cycles lost",
                self.fault_events, self.fault_lost_cycles
            );
        }
        if let Some(w) = &self.windowed {
            let _ = writeln!(
                out,
                "windowed: {} window(s) of {} cycles (stride {})",
                w.count, w.width, w.stride
            );
            if let Some(slo) = &w.slo {
                let _ = writeln!(
                    out,
                    "SLO: {} alert(s) | peak burn fast {:.2} slow {:.2}",
                    slo.alerts, slo.burn_peak_fast, slo.burn_peak_slow
                );
            }
            if !w.tail.is_empty() {
                let _ = writeln!(
                    out,
                    "  {:>6} {:>12} {:>8} {:>10} {:>10} {:>10}",
                    "window", "start", "count", "p50", "p95", "p99"
                );
                for t in &w.tail {
                    let _ = writeln!(
                        out,
                        "  {:>6} {:>12} {:>8} {:>10} {:>10} {:>10}",
                        t.window,
                        t.window * w.stride,
                        t.count,
                        t.p50,
                        t.p95,
                        t.p99,
                    );
                }
            }
        }
        if let Some(fl) = &self.fleet {
            let _ = writeln!(
                out,
                "fleet: {} shard(s) | {} routed | {} rebalanced",
                fl.shards, fl.routed, fl.rebalanced
            );
            if !fl.tail.is_empty() {
                let _ = writeln!(
                    out,
                    "  {:>6} {:>8} {:>10} {:>10} {:>10}",
                    "shard", "jobs", "p50", "p95", "p99"
                );
                for t in &fl.tail {
                    let _ = writeln!(
                        out,
                        "  {:>6} {:>8} {:>10} {:>10} {:>10}",
                        t.shard, t.jobs, t.p50, t.p95, t.p99,
                    );
                }
            }
        }
        if !self.layers.is_empty() {
            let _ = writeln!(
                out,
                "  {:<24} {:>12} {:>10} {:>8} {:>12} {:>7}",
                "group", "cycles", "stall", "overlap", "energy uJ", "share"
            );
            for l in &self.layers {
                let _ = writeln!(
                    out,
                    "  {:<24} {:>12} {:>10} {:>7.2}x {:>12.3} {:>6.1} %",
                    l.name,
                    l.cycles,
                    l.stall,
                    l.overlap,
                    l.energy_aj as f64 / 1e12,
                    pct(l.energy_aj, total),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::parse_stream;
    use mocha_energy::EventCounts;
    use mocha_obs::Recorder;

    fn sample_profile() -> Profile {
        let mut rec = mocha_obs::MemRecorder::new();
        rec.span(|| "job/0".into(), 0, 100);
        rec.span(|| "job/0/group/conv1".into(), 0, 100);
        rec.span(|| "job/0/group/conv1/tile/0/load".into(), 0, 40);
        rec.span(|| "job/0/group/conv1/tile/0/compute".into(), 40, 90);
        rec.span(|| "job/0/group/conv1/tile/0/store".into(), 90, 100);
        EventCounts {
            macs: 5000,
            dram_read_bytes: 256,
            priced_pj: 3.5,
            active_cycles: 100,
            ..Default::default()
        }
        .record(&mut rec);
        rec.sample("runtime.latency_cycles", 100);
        let stream = parse_stream(&rec.to_jsonl()).unwrap();
        let tree = SpanTree::build(&stream.spans).unwrap();
        Profile::build(&tree, &stream, &EnergyTable::default()).0
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let p = sample_profile();
        let v = p.to_json();
        assert!(v.get(PROFILE_MARKER).is_some());
        let q = Profile::from_json(&v).expect("round-trips");
        assert_eq!(p, q);
        // And byte-stable through a reprint.
        let text = v.to_string_pretty();
        let r = Profile::from_json(&mocha_json::parse(&text).unwrap()).unwrap();
        assert_eq!(r.to_json().to_string_pretty(), text);
    }

    #[test]
    fn from_json_rejects_non_profiles() {
        assert!(Profile::from_json(&mocha_json::jobj! {"x" => 1u64}).is_err());
    }

    #[test]
    fn fault_fields_serialize_only_when_faults_were_injected() {
        let clean = sample_profile();
        assert_eq!(clean.fault_events, 0);
        let text = clean.to_json().to_string_pretty();
        assert!(!text.contains("fault"), "zero-fault profiles stay stable");
        let mut faulted = clean.clone();
        faulted.fault_events = 3;
        faulted.fault_lost_cycles = 120;
        let v = faulted.to_json();
        assert_eq!(v.get("fault_events").and_then(Value::as_u64), Some(3));
        let back = Profile::from_json(&v).unwrap();
        assert_eq!(back, faulted);
        assert!(faulted
            .summary_text()
            .contains("faults: 3 injected, 120 executed cycles lost"));
        // A pre-fault-injection profile (no fault keys) still loads.
        assert_eq!(Profile::from_json(&clean.to_json()).unwrap(), clean);
    }

    #[test]
    fn window_fields_serialize_only_for_windowed_streams() {
        let clean = sample_profile();
        assert!(clean.windowed.is_none());
        assert!(!clean.to_json().to_string_pretty().contains("window"));
        let mut windowed = clean.clone();
        windowed.windowed = Some(WindowProfile {
            width: 1_000,
            stride: 500,
            count: 3,
            tail: vec![WindowTail {
                window: 0,
                count: 4,
                p50: 10,
                p95: 20,
                p99: 30,
            }],
            slo: Some(SloProfile {
                alerts: 2,
                burn_peak_fast: 8.5,
                burn_peak_slow: 1.25,
            }),
        });
        let back = Profile::from_json(&windowed.to_json()).expect("round-trips");
        assert_eq!(back, windowed);
        let text = windowed.summary_text();
        assert!(text.contains("windowed: 3 window(s) of 1000 cycles"));
        assert!(text.contains("SLO: 2 alert(s)"));
        assert!(text.contains("p99"), "tail table header");
        // Pre-telemetry profiles (no window keys) still load.
        assert_eq!(Profile::from_json(&clean.to_json()).unwrap(), clean);
    }

    #[test]
    fn build_distils_an_embedded_metrics_export() {
        use mocha_obs::{WindowSpec, WindowedMetrics};
        let mut rec = mocha_obs::MemRecorder::new();
        rec.span(|| "job/0".into(), 0, 100);
        rec.span(|| "job/0/group/conv1".into(), 0, 100);
        rec.span(|| "job/0/group/conv1/tile/0/compute".into(), 0, 100);
        let mut m = WindowedMetrics::new(WindowSpec::tumbling(200));
        let l = m.windows.intern(&[("template", "tiny")]);
        m.windows
            .sample_at(mocha_obs::names::HIST_JOB_LATENCY, l, 100, 100);
        m.windows
            .sample_at(mocha_obs::names::HIST_JOB_LATENCY, l, 250, 70);
        m.enable_slo();
        m.slo.as_mut().unwrap().good(0, 1);
        m.slo.as_mut().unwrap().miss(1, 1);
        let text = format!("{}{}", rec.to_jsonl(), m.to_jsonl());
        let stream = parse_stream(&text).unwrap();
        let tree = SpanTree::build(&stream.spans).unwrap();
        let (p, _) = Profile::build(&tree, &stream, &EnergyTable::default());
        let w = p.windowed.expect("windowed stream distils windows");
        assert_eq!((w.width, w.count), (200, 2));
        // One aggregate (empty-label) tail row per window.
        assert_eq!(w.tail.len(), 2);
        assert_eq!((w.tail[0].p99, w.tail[1].p99), (100, 70));
        let slo = w.slo.expect("slo rows distil");
        assert!(slo.burn_peak_fast > 0.0);
    }

    #[test]
    fn fleet_fields_serialize_only_for_fleet_streams() {
        let clean = sample_profile();
        assert!(clean.fleet.is_none());
        assert!(!clean.to_json().to_string_pretty().contains("fleet"));
        let mut fleet = clean.clone();
        fleet.fleet = Some(FleetProfile {
            shards: 3,
            routed: 40,
            rebalanced: 5,
            tail: vec![ShardTail {
                shard: 1,
                jobs: 12,
                p50: 90,
                p95: 200,
                p99: 250,
            }],
        });
        let back = Profile::from_json(&fleet.to_json()).expect("round-trips");
        assert_eq!(back, fleet);
        let text = fleet.summary_text();
        assert!(text.contains("fleet: 3 shard(s) | 40 routed | 5 rebalanced"));
        assert!(text.contains("shard"), "per-shard tail table header");
        // Pre-fleet profiles (no fleet keys) still load.
        assert_eq!(Profile::from_json(&clean.to_json()).unwrap(), clean);
    }

    #[test]
    fn build_distils_fleet_streams_into_per_shard_tails() {
        let mut rec = mocha_obs::MemRecorder::new();
        rec.span(|| "fleet/shard0".into(), 0, 300);
        rec.span(|| "fleet/shard0/job/0".into(), 0, 100);
        rec.span(|| "fleet/shard0/job/2".into(), 100, 300);
        rec.span(|| "fleet/shard1/job/1".into(), 0, 50);
        rec.span(|| "fleet/shard1/fault/pe".into(), 60, 80);
        rec.add(mocha_obs::names::FLEET_SHARDS, 2);
        rec.add(mocha_obs::names::FLEET_ROUTED, 3);
        rec.add(mocha_obs::names::FLEET_REBALANCED, 1);
        let stream = parse_stream(&rec.to_jsonl()).unwrap();
        let tree = SpanTree::build(&stream.spans).unwrap();
        let (p, _) = Profile::build(&tree, &stream, &EnergyTable::default());
        let fl = p
            .fleet
            .clone()
            .expect("fleet stream distils a fleet section");
        assert_eq!((fl.shards, fl.routed, fl.rebalanced), (2, 3, 1));
        assert_eq!(fl.tail.len(), 2);
        assert_eq!((fl.tail[0].shard, fl.tail[0].jobs), (0, 2));
        assert_eq!((fl.tail[0].p50, fl.tail[0].p99), (100, 200));
        assert_eq!((fl.tail[1].shard, fl.tail[1].p99), (1, 50));
        // The lost-work span lands in the shared fault list.
        assert_eq!(tree.faults.len(), 1);
        assert_eq!(tree.faults[0].kind, "pe");
        assert!(p.summary_text().contains("fleet: 2 shard(s)"));
    }

    #[test]
    fn summary_text_mentions_the_key_lines() {
        let text = sample_profile().summary_text();
        assert!(text.contains("1 job(s), 1 group(s), 1 tile(s)"));
        assert!(text.contains("critical path:"));
        assert!(text.contains("energy:"));
        assert!(text.contains("job latency: p50 100"));
        assert!(text.contains("conv1"));
    }
}
