//! # mocha-trace
//!
//! The analysis layer over `mocha-obs`: turns write-only observability
//! streams into actionable profiles.
//!
//! * **Parsing** ([`event`]) — JSON-lines event streams and recorder
//!   snapshots back into spans/counters/histograms; every failure is a
//!   [`TraceError`] naming the offending line, never a panic.
//! * **Span-tree profiling** ([`tree`]) — reconstructs jobs, groups and
//!   tile stages from the path convention and derives critical paths,
//!   lane overlap efficiency and fabric idle-gap timelines.
//! * **Exact energy attribution** ([`energy`]) — rebuilds the run's
//!   [`EventCounts`](mocha_energy::EventCounts) bit-identically from the
//!   counter stream, prices it, and apportions each component to
//!   (layer × phase) cells in integer attojoules with largest-remainder
//!   rounding — so phase sums, layer sums and the priced total are
//!   **equal**, not approximately equal.
//! * **Chrome export** ([`chrome`]) — the tree as Trace Event Format JSON
//!   for `chrome://tracing` / Perfetto (jobs → pids, lanes → tids).
//! * **Diffing** ([`diff`]) — profile-to-profile comparison with a
//!   `--fail-on-regression` gate for CI.
//!
//! Everything is a pure function of its input, so identical seeded runs
//! produce byte-identical summaries, profiles and exports — the same
//! determinism contract the recorder itself keeps.

#![warn(missing_docs)]

pub mod chrome;
pub mod diff;
pub mod energy;
pub mod event;
pub mod profile;
pub mod tree;

pub use event::{parse_input, parse_stream, HistSummary, Span, Stream, TraceError};
pub use profile::{Profile, PROFILE_MARKER};
pub use tree::SpanTree;

/// One-call convenience: parse either input shape, build the tree, and
/// distil the profile under `table`.
pub fn profile_input(
    text: &str,
    table: &mocha_energy::EnergyTable,
) -> Result<(Profile, SpanTree), TraceError> {
    let stream = parse_input(text)?;
    let tree = SpanTree::build(&stream.spans)?;
    let (profile, _) = Profile::build(&tree, &stream, table);
    Ok((profile, tree))
}
