//! Profile comparison and the perf-regression gate.
//!
//! `diff(A, B)` lines up the scalar metrics of two profiles and reports
//! relative change; metrics marked *higher-is-worse* feed the
//! `--fail-on-regression <pct>` gate ci.sh runs against a committed
//! baseline. Informational metrics (overlap efficiency, busy cycles) are
//! reported but never gate.

use crate::Profile;

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name.
    pub name: &'static str,
    /// Value in the baseline profile.
    pub a: f64,
    /// Value in the candidate profile.
    pub b: f64,
    /// Relative change in percent (`(b-a)/a·100`; 0 when both are 0).
    pub pct: f64,
    /// Whether an increase in this metric is a regression.
    pub higher_is_worse: bool,
}

impl MetricDelta {
    /// Whether this metric regressed beyond `threshold_pct`.
    pub fn regressed(&self, threshold_pct: f64) -> bool {
        self.higher_is_worse && self.pct > threshold_pct
    }
}

fn delta(name: &'static str, a: f64, b: f64, higher_is_worse: bool) -> MetricDelta {
    let pct = if a == 0.0 && b == 0.0 {
        0.0
    } else if a == 0.0 {
        100.0
    } else {
        100.0 * (b - a) / a
    };
    MetricDelta {
        name,
        a,
        b,
        pct,
        higher_is_worse,
    }
}

/// Compares two profiles metric by metric. Latency percentiles appear only
/// when both profiles carry them (runtime streams).
pub fn diff(a: &Profile, b: &Profile) -> Vec<MetricDelta> {
    let mut out = vec![
        delta(
            "makespan_cycles",
            a.makespan as f64,
            b.makespan as f64,
            true,
        ),
        delta("energy_pj", a.energy_pj, b.energy_pj, true),
        delta("dram_bytes", a.dram_bytes as f64, b.dram_bytes as f64, true),
        delta(
            "idle_cycles",
            a.idle_cycles as f64,
            b.idle_cycles as f64,
            false,
        ),
        delta(
            "crit_stall_cycles",
            a.critical.stall as f64,
            b.critical.stall as f64,
            false,
        ),
        delta("overlap", a.overlap, b.overlap, false),
        delta(
            "busy_cycles",
            a.busy.total() as f64,
            b.busy.total() as f64,
            false,
        ),
    ];
    if let (Some((_, a95, _)), Some((_, b95, _))) = (a.latency, b.latency) {
        out.push(delta("latency_p95_cycles", a95 as f64, b95 as f64, true));
    }
    // Fault-injection metrics appear only when both sides ran with faults,
    // so fault-free baselines keep their pre-fault-injection diff shape.
    if (a.fault_events > 0 || a.fault_lost_cycles > 0)
        && (b.fault_events > 0 || b.fault_lost_cycles > 0)
    {
        out.push(delta(
            "fault_lost_cycles",
            a.fault_lost_cycles as f64,
            b.fault_lost_cycles as f64,
            true,
        ));
    }
    // SLO burn metrics gate only when both sides tracked an SLO over
    // windowed telemetry — a candidate that burns error budget faster (or
    // raises more alerts) than the baseline is a serving regression even
    // when mean throughput looks fine.
    if let (Some(sa), Some(sb)) = (
        a.windowed.as_ref().and_then(|w| w.slo.as_ref()),
        b.windowed.as_ref().and_then(|w| w.slo.as_ref()),
    ) {
        out.push(delta(
            "slo_burn_peak_slow",
            sa.burn_peak_slow,
            sb.burn_peak_slow,
            true,
        ));
        out.push(delta(
            "slo_alerts",
            sa.alerts as f64,
            sb.alerts as f64,
            true,
        ));
    }
    out
}

/// The metrics in `deltas` that regressed beyond `threshold_pct`.
pub fn regressions(deltas: &[MetricDelta], threshold_pct: f64) -> Vec<&MetricDelta> {
    deltas
        .iter()
        .filter(|d| d.regressed(threshold_pct))
        .collect()
}

/// Renders the comparison as the fixed-width table `trace diff` prints.
pub fn render(deltas: &[MetricDelta], threshold_pct: Option<f64>) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:>16} {:>16} {:>9}  gate",
        "metric", "baseline", "candidate", "delta"
    );
    for d in deltas {
        let gate = match threshold_pct {
            Some(t) if d.regressed(t) => "FAIL",
            Some(_) if d.higher_is_worse => "ok",
            _ => "-",
        };
        let _ = writeln!(
            out,
            "{:<20} {:>16.3} {:>16.3} {:>+8.2} %  {}",
            d.name, d.a, d.b, d.pct, gate
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::PhaseEnergy;
    use crate::tree::{CriticalPath, LaneCycles};

    fn profile(makespan: u64, energy_pj: f64) -> Profile {
        Profile {
            jobs: 1,
            groups: 1,
            tiles: 1,
            makespan,
            busy: LaneCycles {
                load: 10,
                compute: 20,
                store: 5,
            },
            critical: CriticalPath::default(),
            overlap: 1.2,
            idle_cycles: 0,
            idle_gaps: 0,
            dram_bytes: 1000,
            energy_pj,
            phases: PhaseEnergy::default(),
            layers: Vec::new(),
            latency: Some((10, 20, 30)),
            fault_events: 0,
            fault_lost_cycles: 0,
            windowed: None,
            fleet: None,
        }
    }

    #[test]
    fn identical_profiles_do_not_regress() {
        let p = profile(100, 5000.0);
        let deltas = diff(&p, &p);
        assert!(regressions(&deltas, 0.0).is_empty());
        assert!(deltas.iter().all(|d| d.pct == 0.0));
    }

    #[test]
    fn slower_or_hungrier_candidate_fails_the_gate() {
        let a = profile(100, 5000.0);
        let b = profile(110, 5000.0); // +10 % cycles
        let deltas = diff(&a, &b);
        let failed = regressions(&deltas, 5.0);
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].name, "makespan_cycles");
        assert!(regressions(&deltas, 15.0).is_empty(), "within threshold");
    }

    #[test]
    fn improvements_never_gate() {
        let a = profile(100, 5000.0);
        let b = profile(50, 2500.0);
        assert!(regressions(&diff(&a, &b), 0.0).is_empty());
    }

    #[test]
    fn latency_gates_only_when_both_sides_have_it() {
        let a = profile(100, 1.0);
        let mut b = profile(100, 1.0);
        b.latency = None;
        assert!(!diff(&a, &b).iter().any(|d| d.name.starts_with("latency")));
        let deltas = diff(&a, &a);
        assert!(deltas.iter().any(|d| d.name == "latency_p95_cycles"));
    }

    #[test]
    fn fault_metric_appears_only_when_both_sides_saw_faults() {
        let clean = profile(100, 1.0);
        let mut faulted = profile(100, 1.0);
        faulted.fault_events = 4;
        faulted.fault_lost_cycles = 250;
        assert!(!diff(&clean, &faulted)
            .iter()
            .any(|d| d.name.starts_with("fault")));
        let mut worse = faulted.clone();
        worse.fault_lost_cycles = 500;
        let deltas = diff(&faulted, &worse);
        let d = deltas
            .iter()
            .find(|d| d.name == "fault_lost_cycles")
            .expect("gated fault metric");
        assert!(d.regressed(5.0));
    }

    #[test]
    fn slo_burn_gates_only_when_both_sides_tracked_an_slo() {
        use crate::profile::{SloProfile, WindowProfile};
        let windowed = |alerts: u64, peak: f64| {
            let mut p = profile(100, 1.0);
            p.windowed = Some(WindowProfile {
                width: 1000,
                stride: 1000,
                count: 4,
                tail: Vec::new(),
                slo: Some(SloProfile {
                    alerts,
                    burn_peak_fast: peak,
                    burn_peak_slow: peak,
                }),
            });
            p
        };
        let plain = profile(100, 1.0);
        assert!(!diff(&plain, &windowed(1, 2.0))
            .iter()
            .any(|d| d.name.starts_with("slo")));
        let deltas = diff(&windowed(0, 0.5), &windowed(2, 2.0));
        let burn = deltas
            .iter()
            .find(|d| d.name == "slo_burn_peak_slow")
            .expect("burn metric");
        assert!(burn.regressed(5.0), "4x burn is a regression");
        assert!(deltas
            .iter()
            .any(|d| d.name == "slo_alerts" && d.higher_is_worse));
    }

    #[test]
    fn render_flags_failures() {
        let a = profile(100, 1000.0);
        let b = profile(200, 1000.0);
        let table = render(&diff(&a, &b), Some(5.0));
        assert!(table.contains("makespan_cycles"));
        assert!(table.contains("FAIL"));
        let info = render(&diff(&a, &b), None);
        assert!(!info.contains("FAIL"));
    }
}
