//! Parsing `mocha-obs` output back into structured events.
//!
//! Two input shapes are accepted: the JSON-lines event stream
//! ([`MemRecorder::to_jsonl`](mocha_obs::MemRecorder::to_jsonl) — one
//! tagged object per line) and the single-object snapshot
//! ([`MemRecorder::snapshot`](mocha_obs::MemRecorder::snapshot) — counters
//! and histogram summaries, no spans). Parsing never panics: every failure
//! is a [`TraceError`] naming the 1-based input line, so the CLI can relay
//! it as a one-line scriptable message.

use std::collections::BTreeMap;
use std::fmt;

/// A parse or analysis failure, located at a 1-based input line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line of the offending input (1 for whole-input errors).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl TraceError {
    /// Convenience constructor.
    pub fn new(line: usize, msg: impl Into<String>) -> Self {
        Self {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TraceError {}

/// One completed span: a named `[start, end)` interval in fabric cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Slash-separated span path (`job/0/group/conv1/tile/3/load`).
    pub path: String,
    /// First cycle of the interval.
    pub start: u64,
    /// One past the last cycle of the interval.
    pub end: u64,
    /// 1-based input line the span came from (0 for snapshot inputs), so
    /// tree-building errors can point back at the source.
    pub line: usize,
}

/// A histogram summary as exported by the recorder (count/min/max/mean and
/// the nearest-rank p50/p95/p99).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Mean of all samples.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// The `window_spec` header of a windowed-metrics export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowMeta {
    /// Window width, cycles.
    pub width: u64,
    /// Window stride, cycles (== width for tumbling windows).
    pub stride: u64,
    /// Windows the export covers.
    pub windows: u64,
}

/// One per-window counter row (`window` event).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowValue {
    /// Window index.
    pub window: u64,
    /// First cycle of the window.
    pub start: u64,
    /// One past the last cycle.
    pub end: u64,
    /// Counter name.
    pub name: String,
    /// Canonical label text (`k=v,k=v`; empty for the unlabelled total).
    pub labels: String,
    /// Counter total over the window.
    pub value: u64,
}

/// One per-window histogram row (`whist` event).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowHist {
    /// Window index.
    pub window: u64,
    /// First cycle of the window.
    pub start: u64,
    /// One past the last cycle.
    pub end: u64,
    /// Histogram name.
    pub name: String,
    /// Canonical label text (empty = the all-labels aggregate).
    pub labels: String,
    /// The window's summary.
    pub summary: HistSummary,
}

/// One per-cell SLO row (`slo` event): goodput, miss ratio, and the
/// fast/slow error-budget burn pair.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRecord {
    /// Base-cell index.
    pub window: u64,
    /// In-SLO completions in the cell.
    pub good: u64,
    /// Deadline misses in the cell.
    pub misses: u64,
    /// Errors (misses + sheds + failures) in the cell.
    pub errors: u64,
    /// In-SLO completions per million cycles.
    pub goodput_per_mcycle: f64,
    /// Misses over completions.
    pub miss_ratio: f64,
    /// Fast-window burn rate (error ratio over budget).
    pub burn_fast: f64,
    /// Slow-window burn rate.
    pub burn_slow: f64,
    /// Rising-edge alert in this cell.
    pub alert: bool,
}

/// A fully parsed observability stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stream {
    /// Spans in stream (recording) order.
    pub spans: Vec<Span>,
    /// Integer counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Fractional (`f64`) counters by name. Values round-trip the JSON text
    /// bit for bit (shortest `f64` formatting both ways), which is what
    /// makes exact energy reconciliation possible downstream.
    pub fcounters: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub hists: BTreeMap<String, HistSummary>,
    /// Windowed-metrics header, when the input is (or embeds) a
    /// `--metrics` export.
    pub window_spec: Option<WindowMeta>,
    /// Per-window counter rows, in export order.
    pub windows: Vec<WindowValue>,
    /// Per-window histogram rows, in export order.
    pub whists: Vec<WindowHist>,
    /// Per-cell SLO rows, in export order.
    pub slo: Vec<SloRecord>,
}

impl Stream {
    /// An integer counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A fractional counter's value (0.0 when absent).
    pub fn fcounter(&self, name: &str) -> f64 {
        self.fcounters.get(name).copied().unwrap_or(0.0)
    }
}

fn req<'a>(
    v: &'a mocha_json::Value,
    key: &str,
    line: usize,
) -> Result<&'a mocha_json::Value, TraceError> {
    v.get(key)
        .ok_or_else(|| TraceError::new(line, format!("missing field {key:?}")))
}

fn req_str(v: &mocha_json::Value, key: &str, line: usize) -> Result<String, TraceError> {
    req(v, key, line)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| TraceError::new(line, format!("field {key:?} is not a string")))
}

fn req_u64(v: &mocha_json::Value, key: &str, line: usize) -> Result<u64, TraceError> {
    req(v, key, line)?.as_u64().ok_or_else(|| {
        TraceError::new(line, format!("field {key:?} is not a non-negative integer"))
    })
}

fn req_f64(v: &mocha_json::Value, key: &str, line: usize) -> Result<f64, TraceError> {
    req(v, key, line)?
        .as_f64()
        .ok_or_else(|| TraceError::new(line, format!("field {key:?} is not a number")))
}

fn hist_summary(v: &mocha_json::Value, line: usize) -> Result<HistSummary, TraceError> {
    Ok(HistSummary {
        count: req_u64(v, "count", line)?,
        min: req_u64(v, "min", line)?,
        max: req_u64(v, "max", line)?,
        mean: req_f64(v, "mean", line)?,
        p50: req_u64(v, "p50", line)?,
        p95: req_u64(v, "p95", line)?,
        p99: req_u64(v, "p99", line)?,
    })
}

/// Parses a JSON-lines event stream. Blank lines are skipped; anything else
/// must be one tagged event object per line (a mid-line truncation therefore
/// fails on its own line number).
pub fn parse_stream(text: &str) -> Result<Stream, TraceError> {
    let mut out = Stream::default();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let v = mocha_json::parse(raw).map_err(|e| TraceError::new(line, e.to_string()))?;
        let kind = req_str(&v, "event", line)?;
        match kind.as_str() {
            "span" => {
                let start = req_u64(&v, "start", line)?;
                let end = req_u64(&v, "end", line)?;
                if end < start {
                    return Err(TraceError::new(line, "span ends before it starts"));
                }
                out.spans.push(Span {
                    path: req_str(&v, "path", line)?,
                    start,
                    end,
                    line,
                });
            }
            "counter" => {
                let name = req_str(&v, "name", line)?;
                *out.counters.entry(name).or_insert(0) += req_u64(&v, "value", line)?;
            }
            "fcounter" => {
                let name = req_str(&v, "name", line)?;
                *out.fcounters.entry(name).or_insert(0.0) += req_f64(&v, "value", line)?;
            }
            "hist" => {
                let name = req_str(&v, "name", line)?;
                out.hists.insert(name, hist_summary(&v, line)?);
            }
            "window_spec" => {
                out.window_spec = Some(WindowMeta {
                    width: req_u64(&v, "width", line)?,
                    stride: req_u64(&v, "stride", line)?,
                    windows: req_u64(&v, "windows", line)?,
                });
            }
            "window" => {
                out.windows.push(WindowValue {
                    window: req_u64(&v, "window", line)?,
                    start: req_u64(&v, "start", line)?,
                    end: req_u64(&v, "end", line)?,
                    name: req_str(&v, "name", line)?,
                    labels: req_str(&v, "labels", line)?,
                    value: req_u64(&v, "value", line)?,
                });
            }
            "whist" => {
                out.whists.push(WindowHist {
                    window: req_u64(&v, "window", line)?,
                    start: req_u64(&v, "start", line)?,
                    end: req_u64(&v, "end", line)?,
                    name: req_str(&v, "name", line)?,
                    labels: req_str(&v, "labels", line)?,
                    summary: hist_summary(&v, line)?,
                });
            }
            "slo" => {
                out.slo.push(SloRecord {
                    window: req_u64(&v, "window", line)?,
                    good: req_u64(&v, "good", line)?,
                    misses: req_u64(&v, "misses", line)?,
                    errors: req_u64(&v, "errors", line)?,
                    goodput_per_mcycle: req_f64(&v, "goodput_per_mcycle", line)?,
                    miss_ratio: req_f64(&v, "miss_ratio", line)?,
                    burn_fast: req_f64(&v, "burn_fast", line)?,
                    burn_slow: req_f64(&v, "burn_slow", line)?,
                    alert: req(&v, "alert", line)?
                        .as_bool()
                        .ok_or_else(|| TraceError::new(line, "field \"alert\" is not a boolean"))?,
                });
            }
            other => {
                return Err(TraceError::new(
                    line,
                    format!("unknown event kind {other:?}"),
                ));
            }
        }
    }
    Ok(out)
}

/// Parses either input shape: a whole-input JSON object with a `counters`
/// member is treated as a recorder snapshot (no spans); everything else goes
/// through [`parse_stream`].
pub fn parse_input(text: &str) -> Result<Stream, TraceError> {
    if let Ok(v) = mocha_json::parse(text) {
        if v.get("counters").is_some() && v.get("event").is_none() {
            return stream_from_snapshot(&v);
        }
    }
    parse_stream(text)
}

fn num_map_u64(v: &mocha_json::Value, key: &str) -> Result<BTreeMap<String, u64>, TraceError> {
    let mut out = BTreeMap::new();
    if let Some(mocha_json::Value::Obj(map)) = v.get(key) {
        for (name, val) in map {
            let n = val.as_u64().ok_or_else(|| {
                TraceError::new(1, format!("snapshot {key} {name:?} is not an integer"))
            })?;
            out.insert(name.clone(), n);
        }
    }
    Ok(out)
}

fn stream_from_snapshot(v: &mocha_json::Value) -> Result<Stream, TraceError> {
    let mut out = Stream {
        counters: num_map_u64(v, "counters")?,
        ..Stream::default()
    };
    if let Some(mocha_json::Value::Obj(map)) = v.get("fcounters") {
        for (name, val) in map {
            let n = val.as_f64().ok_or_else(|| {
                TraceError::new(1, format!("snapshot fcounter {name:?} is not a number"))
            })?;
            out.fcounters.insert(name.clone(), n);
        }
    }
    if let Some(mocha_json::Value::Obj(map)) = v.get("hists") {
        for (name, val) in map {
            out.hists.insert(name.clone(), hist_summary(val, 1)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_recorder_stream_round_trip() {
        use mocha_obs::Recorder;
        let mut rec = mocha_obs::MemRecorder::new();
        rec.span(|| "group/conv1".into(), 0, 100);
        rec.span(|| "group/conv1/tile/0/load".into(), 0, 40);
        rec.add("fabric.macs", 7);
        rec.add_f64("fabric.codec_priced_pj", 1.625);
        rec.sample("core.group_cycles", 100);
        let s = parse_stream(&rec.to_jsonl()).expect("parses");
        assert_eq!(s.spans.len(), 2);
        assert_eq!(s.spans[1].path, "group/conv1/tile/0/load");
        assert_eq!(s.counter("fabric.macs"), 7);
        assert_eq!(
            s.fcounter("fabric.codec_priced_pj").to_bits(),
            1.625f64.to_bits()
        );
        assert_eq!(s.hists["core.group_cycles"].count, 1);
        assert_eq!(s.counter("absent"), 0);
    }

    #[test]
    fn snapshot_input_yields_counters_without_spans() {
        let mut rec = mocha_obs::MemRecorder::new();
        use mocha_obs::Recorder;
        rec.span(|| "group/a".into(), 0, 10);
        rec.add("fabric.macs", 3);
        rec.add_f64("fabric.codec_priced_pj", 0.5);
        rec.sample("core.group_cycles", 10);
        let text = rec.snapshot().to_string_pretty();
        let s = parse_input(&text).expect("snapshot parses");
        assert!(s.spans.is_empty());
        assert_eq!(s.counter("fabric.macs"), 3);
        assert_eq!(s.fcounter("fabric.codec_priced_pj"), 0.5);
        assert_eq!(s.hists["core.group_cycles"].p50, 10);
    }

    #[test]
    fn parses_a_windowed_metrics_export_round_trip() {
        use mocha_obs::{WindowSpec, WindowedMetrics};
        let mut m = WindowedMetrics::new(WindowSpec::tumbling(100));
        let l = m.windows.intern(&[("tenant", "0")]);
        m.windows.add_at("serve.requests", l, 5, 2);
        m.windows.sample_at("runtime.latency_cycles", l, 105, 40);
        m.enable_slo();
        m.slo.as_mut().unwrap().good(0, 3);
        m.slo.as_mut().unwrap().miss(1, 1);
        let s = parse_stream(&m.to_jsonl()).expect("parses");
        let meta = s.window_spec.expect("header present");
        assert_eq!((meta.width, meta.stride, meta.windows), (100, 100, 2));
        assert!(s
            .windows
            .iter()
            .any(|w| w.name == "serve.requests" && w.labels == "tenant=0" && w.value == 2));
        // Labelled histograms also export an empty-label aggregate row.
        assert!(s.whists.iter().any(|h| h.name == "runtime.latency_cycles"
            && h.labels.is_empty()
            && h.summary.count == 1));
        assert_eq!(s.slo.len(), 2);
        assert!(s.slo[1].burn_fast > 0.0, "a miss burns budget");
    }

    #[test]
    fn garbage_line_is_named_by_number() {
        let text = "{\"event\":\"counter\",\"name\":\"a\",\"value\":1}\nnot json\n";
        let e = parse_stream(text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().starts_with("line 2: "));
    }

    #[test]
    fn truncated_line_is_named_by_number() {
        let mut rec = mocha_obs::MemRecorder::new();
        use mocha_obs::Recorder;
        rec.span(|| "group/a".into(), 0, 10);
        rec.add("c", 1);
        let text = rec.to_jsonl();
        let cut = &text[..text.len() - 5]; // chop mid-way through line 2
        let e = parse_stream(cut).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn wrong_field_types_and_unknown_kinds_are_errors_not_panics() {
        for (text, want_line) in [
            ("{\"event\":\"span\",\"path\":\"a\",\"start\":\"x\",\"end\":2}", 1),
            ("{\"event\":\"span\",\"path\":\"a\",\"start\":5,\"end\":2}", 1),
            ("{\"event\":\"span\",\"start\":1,\"end\":2}", 1),
            ("{\"event\":\"counter\",\"name\":\"a\",\"value\":-1}", 1),
            ("{\"event\":\"mystery\"}", 1),
            ("{\"no_event\":1}", 1),
            ("{\"event\":\"counter\",\"name\":\"a\",\"value\":1}\n{\"event\":\"hist\",\"name\":\"h\"}", 2),
        ] {
            let e = parse_stream(text).unwrap_err();
            assert_eq!(e.line, want_line, "{text}");
        }
    }

    #[test]
    fn blank_lines_are_skipped() {
        let s = parse_stream("\n{\"event\":\"counter\",\"name\":\"a\",\"value\":2}\n\n").unwrap();
        assert_eq!(s.counter("a"), 2);
    }

    #[test]
    fn repeated_counter_lines_accumulate() {
        let line = "{\"event\":\"counter\",\"name\":\"a\",\"value\":2}\n";
        let s = parse_stream(&format!("{line}{line}")).unwrap();
        assert_eq!(s.counter("a"), 4);
    }
}
