//! Exact phase/layer energy attribution.
//!
//! The obs stream carries every energy-relevant event count (`fabric.*`
//! counters plus the `fabric.codec_priced_pj` fractional counter), so the
//! run's [`EventCounts`] can be rebuilt **bit-identically** and priced with
//! the same [`EnergyTable`] the simulator used — the reconstructed
//! [`EnergyBreakdown`] equals the simulator's golden exactly.
//!
//! Attribution then *joins counters with span intervals*: each breakdown
//! component is converted to integer **attojoules** and apportioned over
//! (layer × phase) cells weighted by the span tree's lane-busy cycles,
//! using largest-remainder rounding. Integer arithmetic makes the books
//! balance by construction: phase sums, layer sums and the component total
//! are all *equal*, not approximately equal.

use crate::tree::SpanTree;
use crate::Stream;
use mocha_energy::{EnergyBreakdown, EnergyTable, EventCounts};
use mocha_obs::names;

/// Attojoules per picojoule: the integer resolution attribution runs at.
/// Well below any per-event energy, so no real signal is lost to rounding.
pub const AJ_PER_PJ: f64 = 1e6;

/// Converts a (non-negative) pJ quantity to integer attojoules.
pub fn aj(pj: f64) -> u128 {
    (pj * AJ_PER_PJ).round() as u128
}

/// Energy per pipeline phase, in attojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseEnergy {
    /// Energy attributed to load stages (DRAM→SPM movement).
    pub load_aj: u128,
    /// Energy attributed to compute stages.
    pub compute_aj: u128,
    /// Energy attributed to store stages (SPM→DRAM movement).
    pub store_aj: u128,
    /// Leakage burned while lanes (or the fabric) sat idle.
    pub idle_aj: u128,
    /// Energy with no span weight to attach to (streams without spans, or
    /// components whose weights are all zero). Zero on simulator streams.
    pub unattributed_aj: u128,
}

impl PhaseEnergy {
    /// Sum over all buckets — equals the component total exactly.
    pub fn total_aj(&self) -> u128 {
        self.load_aj + self.compute_aj + self.store_aj + self.idle_aj + self.unattributed_aj
    }
}

/// Energy attributed to one layer group (layers fused together profile as
/// one unit — they share tiles and intervals).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerEnergy {
    /// Group name (layer names joined with `+`), aggregated over every
    /// execution of that group (all jobs).
    pub name: String,
    /// Makespan cycles summed over the group's executions.
    pub cycles: u64,
    /// Per-phase energy of this layer group.
    pub phases: PhaseEnergy,
}

impl LayerEnergy {
    /// The layer group's total energy in attojoules.
    pub fn total_aj(&self) -> u128 {
        self.phases.total_aj()
    }
}

/// The full reconciled attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// Event counts rebuilt from the counter stream — bit-identical to the
    /// simulator's own totals on simulator-produced streams.
    pub counts: EventCounts,
    /// The rebuilt counts priced by the table.
    pub breakdown: EnergyBreakdown,
    /// Sum of the breakdown components in attojoules. Equals the phase and
    /// layer sums exactly.
    pub total_aj: u128,
    /// Energy per phase over the whole run.
    pub phases: PhaseEnergy,
    /// Energy per layer group, in order of first execution.
    pub layers: Vec<LayerEnergy>,
}

/// Rebuilds [`EventCounts`] from a stream's counters. The integer fields
/// come from `fabric.*` counters; `priced_pj` from the
/// `fabric.codec_priced_pj` fractional counter, whose accumulation order
/// matches the simulator's own merge, so the f64 is bit-identical.
pub fn counts_from_stream(s: &Stream) -> EventCounts {
    EventCounts {
        macs: s.counter(names::FABRIC_MACS),
        macs_skipped: s.counter(names::FABRIC_MACS_SKIPPED),
        pool_ops: s.counter(names::FABRIC_POOL_OPS),
        rf_reads: s.counter(names::FABRIC_RF_READS),
        rf_writes: s.counter(names::FABRIC_RF_WRITES),
        spm_read_bytes: s.counter(names::FABRIC_SPM_READ_BYTES),
        spm_write_bytes: s.counter(names::FABRIC_SPM_WRITE_BYTES),
        noc_flit_hops: s.counter(names::FABRIC_NOC_FLIT_HOPS),
        dram_read_bytes: s.counter(names::FABRIC_DRAM_READ_BYTES),
        dram_write_bytes: s.counter(names::FABRIC_DRAM_WRITE_BYTES),
        dram_bursts: s.counter(names::FABRIC_DRAM_BURSTS),
        codec_bytes: s.counter(names::FABRIC_CODEC_BYTES),
        priced_pj: s.fcounter(names::FABRIC_CODEC_PRICED_PJ),
        active_cycles: s.counter(names::FABRIC_ACTIVE_CYCLES),
    }
}

/// Splits `total` over `weights` exactly: floor shares, then the remainder
/// distributed by largest fractional part (ties broken by index, so the
/// split is deterministic). The shares always sum to `total`.
fn apportion(total: u128, weights: &[u128]) -> Vec<u128> {
    let w: u128 = weights.iter().sum();
    if w == 0 {
        return vec![0; weights.len()];
    }
    let mut shares: Vec<u128> = weights.iter().map(|&wi| total * wi / w).collect();
    let assigned: u128 = shares.iter().sum();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        (total * weights[b] % w)
            .cmp(&(total * weights[a] % w))
            .then(a.cmp(&b))
    });
    let mut left = total - assigned;
    for i in order {
        if left == 0 {
            break;
        }
        shares[i] += 1;
        left -= 1;
    }
    shares
}

/// The per-layer weight rows attribution distributes over.
struct LayerWeights {
    name: String,
    cycles: u64,
    load: u128,
    compute: u128,
    store: u128,
    /// Idle lane-cycles: three lanes for the group's makespan, minus the
    /// busy cycles — the leakage weight for time spent waiting.
    idle: u128,
}

/// Attributes a stream's energy to phases and layers using the span tree's
/// lane intervals as weights. `table` must be the table the run was priced
/// with (the default unless the run overrode `--energy`).
pub fn attribute(tree: &SpanTree, stream: &Stream, table: &EnergyTable) -> Attribution {
    let counts = counts_from_stream(stream);
    let breakdown = table.price(&counts);

    // Aggregate groups by name, in order of first execution.
    let mut layers: Vec<LayerWeights> = Vec::new();
    let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for g in &tree.groups {
        let li = *index.entry(g.name.clone()).or_insert_with(|| {
            layers.push(LayerWeights {
                name: g.name.clone(),
                cycles: 0,
                load: 0,
                compute: 0,
                store: 0,
                idle: 0,
            });
            layers.len() - 1
        });
        let row = &mut layers[li];
        row.cycles += g.cycles();
        row.load += g.busy.load as u128;
        row.compute += g.busy.compute as u128;
        row.store += g.busy.store as u128;
        row.idle += (3 * g.cycles() as u128).saturating_sub(g.busy.total() as u128);
    }

    let mut out: Vec<PhaseEnergy> = layers.iter().map(|_| PhaseEnergy::default()).collect();
    let mut totals = PhaseEnergy::default();
    let mut total_aj: u128 = 0;

    // Each component is apportioned separately over the cells its physics
    // touches, so the component total is preserved exactly.
    //   compute + RF  -> compute lanes (datapath and operand traffic);
    //   DRAM/NoC/codec -> load + store lanes (memory-path movement);
    //   SPM           -> all three lanes (tiles touch SPM in every stage);
    //   leakage       -> busy lanes + idle lane-cycles (time, not events).
    enum Cells {
        Compute,
        LoadStore,
        AllLanes,
        LanesAndIdle,
    }
    let components: [(u128, Cells); 7] = [
        (aj(breakdown.compute_pj), Cells::Compute),
        (aj(breakdown.rf_pj), Cells::Compute),
        (aj(breakdown.dram_pj), Cells::LoadStore),
        (aj(breakdown.noc_pj), Cells::LoadStore),
        (aj(breakdown.codec_pj), Cells::LoadStore),
        (aj(breakdown.spm_pj), Cells::AllLanes),
        (aj(breakdown.leakage_pj), Cells::LanesAndIdle),
    ];

    for (total, cells) in components {
        total_aj += total;
        // One weight per (layer, phase) cell, flattened deterministically.
        let mut weights: Vec<u128> = Vec::new();
        let mut slots: Vec<(usize, Phase)> = Vec::new();
        for (li, l) in layers.iter().enumerate() {
            let phase_weights: &[(Phase, u128)] = match cells {
                Cells::Compute => &[(Phase::Compute, l.compute)],
                Cells::LoadStore => &[(Phase::Load, l.load), (Phase::Store, l.store)],
                Cells::AllLanes => &[
                    (Phase::Load, l.load),
                    (Phase::Compute, l.compute),
                    (Phase::Store, l.store),
                ],
                Cells::LanesAndIdle => &[
                    (Phase::Load, l.load),
                    (Phase::Compute, l.compute),
                    (Phase::Store, l.store),
                    (Phase::Idle, l.idle),
                ],
            };
            for &(p, w) in phase_weights {
                weights.push(w);
                slots.push((li, p));
            }
        }
        if weights.iter().sum::<u128>() == 0 {
            // No spans (snapshot input) or an all-zero weight class: keep
            // the energy on the books, just unattached to a phase.
            totals.unattributed_aj += total;
            continue;
        }
        for (share, &(li, p)) in apportion(total, &weights).iter().zip(&slots) {
            let row = &mut out[li];
            let (cell, sum) = match p {
                Phase::Load => (&mut row.load_aj, &mut totals.load_aj),
                Phase::Compute => (&mut row.compute_aj, &mut totals.compute_aj),
                Phase::Store => (&mut row.store_aj, &mut totals.store_aj),
                Phase::Idle => (&mut row.idle_aj, &mut totals.idle_aj),
            };
            *cell += share;
            *sum += share;
        }
    }

    Attribution {
        counts,
        breakdown,
        total_aj,
        phases: totals,
        layers: layers
            .into_iter()
            .zip(out)
            .map(|(l, phases)| LayerEnergy {
                name: l.name,
                cycles: l.cycles,
                phases,
            })
            .collect(),
    }
}

#[derive(Clone, Copy)]
enum Phase {
    Load,
    Compute,
    Store,
    Idle,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::parse_stream;
    use mocha_obs::Recorder;

    #[test]
    fn apportion_is_exact_and_deterministic() {
        // 10 over weights 1,1,1 -> 4,3,3 (remainders equal, index order).
        assert_eq!(apportion(10, &[1, 1, 1]), vec![4, 3, 3]);
        assert_eq!(apportion(0, &[1, 2]), vec![0, 0]);
        assert_eq!(apportion(7, &[0, 0]), vec![0, 0]);
        assert_eq!(apportion(7, &[0, 1]), vec![0, 7]);
        for (total, weights) in [
            (1_000_003u128, vec![3u128, 7, 11, 0, 13]),
            (999, vec![1, 1]),
            (1, vec![5, 5, 5]),
        ] {
            let shares = apportion(total, &weights);
            assert_eq!(shares.iter().sum::<u128>(), total, "{total} {weights:?}");
        }
    }

    #[test]
    fn counts_round_trip_through_a_recorded_stream() {
        let golden = EventCounts {
            macs: 123,
            macs_skipped: 4,
            pool_ops: 5,
            rf_reads: 6,
            rf_writes: 7,
            spm_read_bytes: 8,
            spm_write_bytes: 9,
            noc_flit_hops: 10,
            dram_read_bytes: 11,
            dram_write_bytes: 12,
            dram_bursts: 13,
            codec_bytes: 14,
            priced_pj: 0.1 + 0.2, // deliberately not representable exactly
            active_cycles: 15,
        };
        let mut rec = mocha_obs::MemRecorder::new();
        golden.record(&mut rec);
        let stream = parse_stream(&rec.to_jsonl()).unwrap();
        let rebuilt = counts_from_stream(&stream);
        assert_eq!(rebuilt, golden);
        assert_eq!(rebuilt.priced_pj.to_bits(), golden.priced_pj.to_bits());
    }

    #[test]
    fn attribution_books_balance_exactly() {
        let mut rec = mocha_obs::MemRecorder::new();
        rec.span(|| "group/conv1".into(), 0, 100);
        rec.span(|| "group/conv1/tile/0/load".into(), 0, 40);
        rec.span(|| "group/conv1/tile/0/compute".into(), 40, 90);
        rec.span(|| "group/conv1/tile/0/store".into(), 90, 100);
        rec.span(|| "group/fc1".into(), 100, 130);
        rec.span(|| "group/fc1/tile/0/compute".into(), 100, 130);
        let golden = EventCounts {
            macs: 1_000_000,
            dram_read_bytes: 4096,
            dram_bursts: 64,
            spm_read_bytes: 2048,
            noc_flit_hops: 999,
            priced_pj: 12.375,
            active_cycles: 130,
            ..Default::default()
        };
        golden.record(&mut rec);
        let stream = parse_stream(&rec.to_jsonl()).unwrap();
        let tree = SpanTree::build(&stream.spans).unwrap();
        let table = EnergyTable::default();
        let a = attribute(&tree, &stream, &table);

        let b = table.price(&golden);
        let component_sum = aj(b.compute_pj)
            + aj(b.rf_pj)
            + aj(b.spm_pj)
            + aj(b.noc_pj)
            + aj(b.dram_pj)
            + aj(b.codec_pj)
            + aj(b.leakage_pj);
        assert_eq!(a.total_aj, component_sum);
        assert_eq!(a.phases.total_aj(), a.total_aj, "phase sums must balance");
        let layer_sum: u128 = a.layers.iter().map(LayerEnergy::total_aj).sum();
        assert_eq!(layer_sum, a.total_aj, "layer sums must balance");
        assert_eq!(
            a.phases.unattributed_aj, 0,
            "simulator streams attribute fully"
        );
        // All compute/RF energy lands in compute; DRAM lands in load+store.
        assert!(a.phases.compute_aj >= aj(b.compute_pj));
        assert!(a.phases.load_aj + a.phases.store_aj >= aj(b.dram_pj));
    }

    #[test]
    fn spanless_stream_parks_everything_unattributed() {
        let mut rec = mocha_obs::MemRecorder::new();
        EventCounts {
            macs: 10,
            active_cycles: 5,
            ..Default::default()
        }
        .record(&mut rec);
        let stream = parse_stream(&rec.to_jsonl()).unwrap();
        let tree = SpanTree::build(&stream.spans).unwrap();
        let a = attribute(&tree, &stream, &EnergyTable::default());
        assert_eq!(a.phases.unattributed_aj, a.total_aj);
        assert_eq!(a.phases.total_aj(), a.total_aj);
        assert!(a.total_aj > 0);
    }
}
