//! Chrome trace-event export.
//!
//! Emits the span tree in the Trace Event Format (the JSON object form:
//! `{"traceEvents": [...]}`) loadable in `chrome://tracing` and Perfetto.
//! Mapping: **jobs are processes** (pid = job id; a single-tenant run is
//! pid 0, "run"), **pipeline lanes are threads** (tid 0 groups, 1 load,
//! 2 compute, 3 store), and every span is a complete `"ph":"X"` event with
//! `ts`/`dur` in fabric cycles (the viewer's microsecond label reads as
//! cycles). Output order and formatting are deterministic.

use crate::tree::SpanTree;
use mocha_json::Value;

const TID_GROUPS: u64 = 0;
const TID_LOAD: u64 = 1;
const TID_COMPUTE: u64 = 2;
const TID_STORE: u64 = 3;

fn meta(pid: u64, tid: Option<u64>, name: &str) -> Value {
    let mut v = mocha_json::jobj! {
        "ph" => "M",
        "pid" => pid,
        "name" => if tid.is_some() { "thread_name" } else { "process_name" },
        "args" => mocha_json::jobj! { "name" => name },
    };
    if let Some(tid) = tid {
        v = v.with("tid", tid);
    }
    v
}

fn slice(name: &str, cat: &str, pid: u64, tid: u64, start: u64, end: u64) -> Value {
    mocha_json::jobj! {
        "name" => name,
        "cat" => cat,
        "ph" => "X",
        "pid" => pid,
        "tid" => tid,
        "ts" => start,
        "dur" => end - start,
    }
}

/// Renders the tree as a Chrome trace-event JSON object.
pub fn export(tree: &SpanTree) -> Value {
    let mut events: Vec<Value> = Vec::new();

    // Processes present: each job id, plus pid 0 for single-tenant groups.
    let mut pids: Vec<(u64, String)> = tree
        .jobs
        .iter()
        .map(|j| (j.id, format!("job {}", j.id)))
        .collect();
    if tree.groups.iter().any(|g| g.job.is_none()) && !pids.iter().any(|&(p, _)| p == 0) {
        pids.push((0, "run".to_string()));
    }
    pids.sort();
    for (pid, name) in &pids {
        events.push(meta(*pid, None, name));
        events.push(meta(*pid, Some(TID_GROUPS), "groups"));
        events.push(meta(*pid, Some(TID_LOAD), "load"));
        events.push(meta(*pid, Some(TID_COMPUTE), "compute"));
        events.push(meta(*pid, Some(TID_STORE), "store"));
    }

    for j in &tree.jobs {
        events.push(slice(
            &format!("job {}", j.id),
            "job",
            j.id,
            TID_GROUPS,
            j.start,
            j.end,
        ));
    }

    for g in &tree.groups {
        let pid = g.job.unwrap_or(0);
        events.push(slice(&g.name, "group", pid, TID_GROUPS, g.start, g.end));
        for (i, t) in g.tiles.iter().enumerate() {
            for (tid, cat, interval) in [
                (TID_LOAD, "load", t.load),
                (TID_COMPUTE, "compute", t.compute),
                (TID_STORE, "store", t.store),
            ] {
                if let Some((s, e)) = interval {
                    events.push(slice(&format!("{} tile {i}", g.name), cat, pid, tid, s, e));
                }
            }
        }
    }

    mocha_json::jobj! {
        "displayTimeUnit" => "ms",
        "traceEvents" => events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Span;

    fn span(path: &str, start: u64, end: u64) -> Span {
        Span {
            path: path.into(),
            start,
            end,
            line: 1,
        }
    }

    #[test]
    fn export_shapes_jobs_as_pids_and_lanes_as_tids() {
        let tree = SpanTree::build(&[
            span("job/3/group/conv1", 0, 50),
            span("job/3/group/conv1/tile/0/load", 0, 20),
            span("job/3/group/conv1/tile/0/compute", 20, 45),
            span("job/3/group/conv1/tile/0/store", 45, 50),
            span("job/3", 0, 50),
        ])
        .unwrap();
        let v = export(&tree);
        let events = v.get("traceEvents").and_then(Value::as_arr).unwrap();
        // 5 metadata + 1 job + 1 group + 3 stages.
        assert_eq!(events.len(), 10);
        let x: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(x.len(), 5);
        for e in &x {
            assert_eq!(e.get("pid").and_then(Value::as_u64), Some(3));
            let ts = e.get("ts").and_then(Value::as_u64).unwrap();
            let dur = e.get("dur").and_then(Value::as_u64).unwrap();
            assert!(ts + dur <= 50);
        }
        let loads: Vec<&&Value> = x
            .iter()
            .filter(|e| e.get("cat").and_then(Value::as_str) == Some("load"))
            .collect();
        assert_eq!(loads.len(), 1);
        assert_eq!(loads[0].get("tid").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn single_tenant_run_is_pid_zero() {
        let tree = SpanTree::build(&[span("group/a", 0, 10)]).unwrap();
        let v = export(&tree);
        let events = v.get("traceEvents").and_then(Value::as_arr).unwrap();
        let process = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("process_name"))
            .unwrap();
        assert_eq!(process.get("pid").and_then(Value::as_u64), Some(0));
        assert_eq!(
            process
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str),
            Some("run")
        );
    }

    #[test]
    fn export_is_deterministic() {
        let spans = [
            span("group/a", 0, 10),
            span("group/a/tile/0/compute", 0, 10),
        ];
        let a = export(&SpanTree::build(&spans).unwrap()).to_string_compact();
        let b = export(&SpanTree::build(&spans).unwrap()).to_string_compact();
        assert_eq!(a, b);
    }
}
