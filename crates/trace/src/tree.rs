//! Span-tree reconstruction and pipeline analysis.
//!
//! The obs stream is flat; structure lives in the path convention
//! (`job/<id>`, `[job/<id>/]group/<layers>`, `<group>/tile/<i>/{load,
//! compute,store}`). This module rebuilds the tree and derives what the
//! flat stream can't show directly: per-group **critical paths** (which
//! stage chain actually bounds the makespan, and where it stalls),
//! load/compute/store **lane occupancy** and overlap efficiency, and the
//! fabric **idle-gap timeline** between groups.

use crate::event::{Span, TraceError};

/// Busy cycles per pipeline lane (summed stage durations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneCycles {
    /// Cycles the load DMA lane was busy.
    pub load: u64,
    /// Cycles the compute lane was busy.
    pub compute: u64,
    /// Cycles the store DMA lane was busy.
    pub store: u64,
}

impl LaneCycles {
    /// Total busy cycles over all three lanes.
    pub fn total(&self) -> u64 {
        self.load + self.compute + self.store
    }

    /// Accumulates another lane tally.
    pub fn merge(&mut self, other: &LaneCycles) {
        self.load += other.load;
        self.compute += other.compute;
        self.store += other.store;
    }
}

/// Cycles on a group's critical path, split by what the path was doing.
///
/// The four parts sum to the group's makespan: every cycle between group
/// start and group end is on the critical chain either inside a stage or in
/// a stall (waiting for a buffer or an earlier stage on the same lane).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// Critical cycles inside load stages.
    pub load: u64,
    /// Critical cycles inside compute stages.
    pub compute: u64,
    /// Critical cycles inside store stages.
    pub store: u64,
    /// Critical cycles spent stalled between stages.
    pub stall: u64,
}

impl CriticalPath {
    /// Total critical-path cycles (the group makespan).
    pub fn total(&self) -> u64 {
        self.load + self.compute + self.store + self.stall
    }

    /// Accumulates another path.
    pub fn merge(&mut self, other: &CriticalPath) {
        self.load += other.load;
        self.compute += other.compute;
        self.store += other.store;
        self.stall += other.stall;
    }
}

/// One tile's stage intervals (absolute cycles; a stage the schedule
/// skipped — zero length — is `None`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileStages {
    /// Load interval.
    pub load: Option<(u64, u64)>,
    /// Compute interval.
    pub compute: Option<(u64, u64)>,
    /// Store interval.
    pub store: Option<(u64, u64)>,
}

/// One executed fusion group reconstructed from its spans.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupNode {
    /// Owning job id (`None` in single-tenant streams).
    pub job: Option<u64>,
    /// Group name: layer names joined with `+`.
    pub name: String,
    /// Group start, absolute cycles.
    pub start: u64,
    /// Group end, absolute cycles.
    pub end: u64,
    /// Per-tile stage intervals, in tile order.
    pub tiles: Vec<TileStages>,
    /// Busy cycles per lane.
    pub busy: LaneCycles,
    /// The group's critical path.
    pub critical: CriticalPath,
}

impl GroupNode {
    /// Group makespan in cycles.
    pub fn cycles(&self) -> u64 {
        self.end - self.start
    }

    /// Pipeline overlap efficiency: busy lane cycles per makespan cycle.
    /// 1.0 means fully serialized; up to 3.0 when all three lanes run
    /// concurrently the whole time.
    pub fn overlap(&self) -> f64 {
        if self.end == self.start {
            return 0.0;
        }
        self.busy.total() as f64 / (self.end - self.start) as f64
    }
}

/// One job reconstructed from its retire span and its groups.
#[derive(Debug, Clone, PartialEq)]
pub struct JobNode {
    /// Job id from the span path.
    pub id: u64,
    /// Admission cycle (job span start).
    pub start: u64,
    /// Finish cycle (job span end).
    pub end: u64,
    /// Indices into [`SpanTree::groups`], in execution order.
    pub groups: Vec<usize>,
    /// Cycles inside `[start, end)` not covered by any of the job's groups.
    pub idle: u64,
}

/// One fault-recovery interval (`fault/<kind>` span): work the fabric
/// executed but lost to an injected fault and had to redo.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpan {
    /// Faulted component kind (`pe`, `spm`, `noc`, `dma`, `dram`).
    pub kind: String,
    /// Start of the lost window, absolute cycles.
    pub start: u64,
    /// End of the lost window (the fault instant), absolute cycles.
    pub end: u64,
}

/// One completed fleet request (`fleet/shard<s>/job/<idx>` span): its
/// in-service residency from first start to completion on one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardJob {
    /// Shard index from the span path.
    pub shard: u64,
    /// Request index from the span path.
    pub idx: u64,
    /// First service start, absolute cycles.
    pub start: u64,
    /// Completion, absolute cycles.
    pub end: u64,
}

/// The reconstructed profile tree plus fabric-level derived timelines.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanTree {
    /// Jobs sorted by id (empty for single-tenant streams).
    pub jobs: Vec<JobNode>,
    /// Groups in stream (execution) order.
    pub groups: Vec<GroupNode>,
    /// Work windows lost to injected faults, in stream order (empty without
    /// fault injection). Fleet streams contribute their per-shard
    /// `fleet/shard<s>/fault/<kind>` windows here too.
    pub faults: Vec<FaultSpan>,
    /// Completed fleet requests (`fleet/shard<s>/job/<idx>`), in stream
    /// order (empty outside fleet streams).
    pub shard_jobs: Vec<ShardJob>,
    /// Whole-shard slices of a fleet batch run (`fleet/shard<s>` spans):
    /// `(shard, start, end)`, in stream order.
    pub shard_slices: Vec<(u64, u64, u64)>,
    /// Last cycle any span covers.
    pub makespan: u64,
    /// Maximal intervals in `[0, makespan)` where no group was executing.
    pub idle_gaps: Vec<(u64, u64)>,
    /// Total cycles in [`Self::idle_gaps`].
    pub idle_cycles: u64,
}

impl SpanTree {
    /// Builds the tree from a parsed span list. Fails (never panics) on
    /// paths outside the convention, pointing at the offending input line.
    pub fn build(spans: &[Span]) -> Result<SpanTree, TraceError> {
        let mut tree = SpanTree::default();
        // Open groups: path -> index into tree.groups, so tile spans (which
        // follow their group span in stream order) can attach.
        let mut by_path: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        let mut job_spans: Vec<(u64, u64, u64)> = Vec::new(); // (id, start, end)

        for sp in spans {
            tree.makespan = tree.makespan.max(sp.end);
            let segs: Vec<&str> = sp.path.split('/').collect();
            match segs.as_slice() {
                ["job", id] => {
                    let id = parse_id(id, "job", sp)?;
                    job_spans.push((id, sp.start, sp.end));
                }
                ["job", id, "group", name] => {
                    let id = parse_id(id, "job", sp)?;
                    by_path.insert(sp.path.clone(), tree.groups.len());
                    tree.groups.push(new_group(Some(id), name, sp));
                }
                ["group", name] => {
                    by_path.insert(sp.path.clone(), tree.groups.len());
                    tree.groups.push(new_group(None, name, sp));
                }
                ["fault", kind] => {
                    tree.faults.push(FaultSpan {
                        kind: kind.to_string(),
                        start: sp.start,
                        end: sp.end,
                    });
                }
                ["fleet", shard] => {
                    let shard = parse_shard(shard, sp)?;
                    tree.shard_slices.push((shard, sp.start, sp.end));
                }
                ["fleet", shard, "job", idx] => {
                    tree.shard_jobs.push(ShardJob {
                        shard: parse_shard(shard, sp)?,
                        idx: parse_id(idx, "fleet job", sp)?,
                        start: sp.start,
                        end: sp.end,
                    });
                }
                ["fleet", shard, "fault", kind] => {
                    parse_shard(shard, sp)?;
                    tree.faults.push(FaultSpan {
                        kind: kind.to_string(),
                        start: sp.start,
                        end: sp.end,
                    });
                }
                [.., "tile", index, stage] => {
                    let prefix_len = sp.path.len() - "/tile//".len() - index.len() - stage.len();
                    let prefix = &sp.path[..prefix_len];
                    let &gi = by_path.get(prefix).ok_or_else(|| {
                        TraceError::new(
                            sp.line,
                            format!("tile span {:?} has no enclosing group", sp.path),
                        )
                    })?;
                    let index = parse_id(index, "tile", sp)? as usize;
                    let tiles = &mut tree.groups[gi].tiles;
                    if tiles.len() <= index {
                        tiles.resize(index + 1, TileStages::default());
                    }
                    let slot = match *stage {
                        "load" => &mut tiles[index].load,
                        "compute" => &mut tiles[index].compute,
                        "store" => &mut tiles[index].store,
                        other => {
                            return Err(TraceError::new(
                                sp.line,
                                format!("unknown tile stage {other:?} in span {:?}", sp.path),
                            ))
                        }
                    };
                    *slot = Some((sp.start, sp.end));
                }
                _ => {
                    return Err(TraceError::new(
                        sp.line,
                        format!("unrecognized span path {:?}", sp.path),
                    ))
                }
            }
        }

        for g in &mut tree.groups {
            (g.busy, g.critical) = analyze_group(g);
        }
        tree.jobs = build_jobs(&job_spans, &tree.groups);
        (tree.idle_gaps, tree.idle_cycles) = idle_gaps(&tree.groups, tree.makespan);
        Ok(tree)
    }

    /// Total busy lane cycles over all groups.
    pub fn busy(&self) -> LaneCycles {
        let mut total = LaneCycles::default();
        for g in &self.groups {
            total.merge(&g.busy);
        }
        total
    }

    /// Total critical-path cycles over all groups.
    pub fn critical(&self) -> CriticalPath {
        let mut total = CriticalPath::default();
        for g in &self.groups {
            total.merge(&g.critical);
        }
        total
    }

    /// Total tiles over all groups.
    pub fn tiles(&self) -> usize {
        self.groups.iter().map(|g| g.tiles.len()).sum()
    }

    /// Total cycles of executed work lost to faults (sum of fault spans).
    pub fn fault_lost_cycles(&self) -> u64 {
        self.faults.iter().map(|f| f.end - f.start).sum()
    }

    /// Aggregate overlap efficiency: busy lane cycles per group-makespan
    /// cycle over the whole stream.
    pub fn overlap(&self) -> f64 {
        let span: u64 = self.groups.iter().map(GroupNode::cycles).sum();
        if span == 0 {
            return 0.0;
        }
        self.busy().total() as f64 / span as f64
    }
}

fn parse_shard(text: &str, sp: &Span) -> Result<u64, TraceError> {
    text.strip_prefix("shard")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| {
            TraceError::new(
                sp.line,
                format!("invalid fleet shard {text:?} in span {:?}", sp.path),
            )
        })
}

fn parse_id(text: &str, what: &str, sp: &Span) -> Result<u64, TraceError> {
    text.parse().map_err(|_| {
        TraceError::new(
            sp.line,
            format!("invalid {what} id {text:?} in span {:?}", sp.path),
        )
    })
}

fn new_group(job: Option<u64>, name: &str, sp: &Span) -> GroupNode {
    GroupNode {
        job,
        name: name.to_string(),
        start: sp.start,
        end: sp.end,
        tiles: Vec::new(),
        busy: LaneCycles::default(),
        critical: CriticalPath::default(),
    }
}

/// Stage kind on the critical walk.
#[derive(Clone, Copy)]
enum Kind {
    Load,
    Compute,
    Store,
}

/// Lane occupancy and critical path of one group.
///
/// The critical path is found by walking backwards from the group end: at
/// time `t`, the chain continues through the stage that finishes exactly at
/// `t` (first in tile order — deterministic); when no stage does, the gap
/// back to the latest earlier finish is a stall. The walk reaches the group
/// start because the first tile's first stage starts there; any remainder
/// (e.g. a group with no recorded stages) is counted as stall.
fn analyze_group(g: &GroupNode) -> (LaneCycles, CriticalPath) {
    let mut busy = LaneCycles::default();
    let mut stages: Vec<(Kind, u64, u64)> = Vec::new();
    for t in &g.tiles {
        if let Some((s, e)) = t.load {
            busy.load += e - s;
            stages.push((Kind::Load, s, e));
        }
        if let Some((s, e)) = t.compute {
            busy.compute += e - s;
            stages.push((Kind::Compute, s, e));
        }
        if let Some((s, e)) = t.store {
            busy.store += e - s;
            stages.push((Kind::Store, s, e));
        }
    }

    let mut crit = CriticalPath::default();
    let mut t = g.end;
    while t > g.start {
        // The stage finishing exactly at t, else the latest finish before t.
        let mut exact: Option<(Kind, u64)> = None;
        let mut latest: Option<(Kind, u64, u64)> = None;
        for &(k, s, e) in &stages {
            if e == t && exact.is_none() {
                exact = Some((k, s));
            }
            if e < t && latest.is_none_or(|(_, _, le)| e > le) {
                latest = Some((k, s, e));
            }
        }
        match (exact, latest) {
            (Some((k, s)), _) => {
                let span = t - s.max(g.start);
                match k {
                    Kind::Load => crit.load += span,
                    Kind::Compute => crit.compute += span,
                    Kind::Store => crit.store += span,
                }
                t = s.max(g.start);
            }
            (None, Some((_, _, e))) => {
                crit.stall += t - e.max(g.start);
                t = e.max(g.start);
            }
            (None, None) => {
                crit.stall += t - g.start;
                t = g.start;
            }
        }
    }
    (busy, crit)
}

fn build_jobs(job_spans: &[(u64, u64, u64)], groups: &[GroupNode]) -> Vec<JobNode> {
    let mut jobs: Vec<JobNode> = job_spans
        .iter()
        .map(|&(id, start, end)| JobNode {
            id,
            start,
            end,
            groups: Vec::new(),
            idle: 0,
        })
        .collect();
    jobs.sort_by_key(|j| j.id);
    for (gi, g) in groups.iter().enumerate() {
        if let Some(jid) = g.job {
            if let Ok(ji) = jobs.binary_search_by_key(&jid, |j| j.id) {
                jobs[ji].groups.push(gi);
            }
        }
    }
    for j in &mut jobs {
        // A job's groups execute sequentially, so idle inside the job span
        // is its duration minus the sum of its group makespans.
        let covered: u64 = j.groups.iter().map(|&gi| groups[gi].cycles()).sum();
        j.idle = (j.end - j.start).saturating_sub(covered);
    }
    jobs
}

/// Maximal uncovered intervals of `[0, makespan)` given the group spans.
fn idle_gaps(groups: &[GroupNode], makespan: u64) -> (Vec<(u64, u64)>, u64) {
    let mut intervals: Vec<(u64, u64)> = groups
        .iter()
        .filter(|g| g.end > g.start)
        .map(|g| (g.start, g.end))
        .collect();
    intervals.sort_unstable();
    let mut gaps = Vec::new();
    let mut cursor = 0u64;
    for (s, e) in intervals {
        if s > cursor {
            gaps.push((cursor, s));
        }
        cursor = cursor.max(e);
    }
    if makespan > cursor {
        gaps.push((cursor, makespan));
    }
    let total = gaps.iter().map(|(s, e)| e - s).sum();
    (gaps, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(path: &str, start: u64, end: u64) -> Span {
        Span {
            path: path.into(),
            start,
            end,
            line: 1,
        }
    }

    /// A serialized (single-buffered) two-tile group: every cycle is on the
    /// critical path inside a stage, no stalls, overlap 1.0.
    #[test]
    fn serialized_group_critical_path_has_no_stall() {
        let spans = vec![
            span("group/conv1", 0, 60),
            span("group/conv1/tile/0/load", 0, 10),
            span("group/conv1/tile/0/compute", 10, 25),
            span("group/conv1/tile/0/store", 25, 30),
            span("group/conv1/tile/1/load", 30, 40),
            span("group/conv1/tile/1/compute", 40, 55),
            span("group/conv1/tile/1/store", 55, 60),
        ];
        let tree = SpanTree::build(&spans).unwrap();
        let g = &tree.groups[0];
        assert_eq!(
            g.busy,
            LaneCycles {
                load: 20,
                compute: 30,
                store: 10
            }
        );
        assert_eq!(
            g.critical,
            CriticalPath {
                load: 20,
                compute: 30,
                store: 10,
                stall: 0
            }
        );
        assert_eq!(g.critical.total(), g.cycles());
        assert!((g.overlap() - 1.0).abs() < 1e-12);
    }

    /// A double-buffered compute-bound group: loads hide under compute, the
    /// critical path is load(first) + computes + store(last).
    #[test]
    fn pipelined_group_critical_path_follows_the_bottleneck_lane() {
        let spans = vec![
            span("group/conv2", 100, 160),
            span("group/conv2/tile/0/load", 100, 110),
            span("group/conv2/tile/0/compute", 110, 130),
            span("group/conv2/tile/0/store", 130, 135),
            span("group/conv2/tile/1/load", 110, 120),
            span("group/conv2/tile/1/compute", 130, 150),
            span("group/conv2/tile/1/store", 150, 155),
            span("group/conv2/tile/2/load", 120, 130),
            span("group/conv2/tile/2/compute", 150, 155),
            span("group/conv2/tile/2/store", 155, 160),
        ];
        let tree = SpanTree::build(&spans).unwrap();
        let g = &tree.groups[0];
        // Backward walk (first-in-tile-order tie-break): store2(155..160)
        // <- store1(150..155) <- compute1(130..150) <- compute0(110..130)
        // <- load0(100..110).
        assert_eq!(
            g.critical,
            CriticalPath {
                load: 10,
                compute: 40,
                store: 10,
                stall: 0
            }
        );
        assert_eq!(g.critical.total(), g.cycles());
        assert!(g.overlap() > 1.0, "pipelining must overlap lanes");
    }

    /// A gap in the chain (buffer stall) shows up as stall cycles.
    #[test]
    fn chain_gap_counts_as_stall() {
        let spans = vec![
            span("group/g", 0, 50),
            span("group/g/tile/0/load", 0, 10),
            // Compute starts 5 cycles after the load finished.
            span("group/g/tile/0/compute", 15, 40),
            span("group/g/tile/0/store", 40, 50),
        ];
        let tree = SpanTree::build(&spans).unwrap();
        let g = &tree.groups[0];
        assert_eq!(
            g.critical,
            CriticalPath {
                load: 10,
                compute: 25,
                store: 10,
                stall: 5
            }
        );
        assert_eq!(g.critical.total(), 50);
    }

    #[test]
    fn jobs_collect_their_groups_and_idle_cycles() {
        let spans = vec![
            span("job/1/group/a", 10, 30),
            span("job/1/group/a/tile/0/compute", 10, 30),
            span("job/1/group/b", 40, 50),
            span("job/1/group/b/tile/0/compute", 40, 50),
            span("job/0/group/a", 0, 25),
            span("job/0/group/a/tile/0/compute", 0, 25),
            span("job/0", 0, 25),
            span("job/1", 5, 50),
        ];
        let tree = SpanTree::build(&spans).unwrap();
        assert_eq!(tree.jobs.len(), 2);
        assert_eq!(tree.jobs[0].id, 0);
        assert_eq!(tree.jobs[0].groups.len(), 1);
        assert_eq!(tree.jobs[1].groups.len(), 2);
        // Job 1: span 45 cycles, groups cover 20 + 10.
        assert_eq!(tree.jobs[1].idle, 15);
        assert_eq!(tree.makespan, 50);
        // Fabric gap: [30, 40) only (job 0's group covers [0,25), job 1's
        // first covers [10,30)).
        assert_eq!(tree.idle_gaps, vec![(30, 40)]);
        assert_eq!(tree.idle_cycles, 10);
    }

    #[test]
    fn tile_without_group_and_bad_paths_are_errors() {
        for bad in [
            "group/a/tile/0/load", // no group span seen first
            "what/ever",
            "job/xyz",
        ] {
            let e = SpanTree::build(&[span(bad, 0, 1)]).unwrap_err();
            assert_eq!(e.line, 1, "{bad}: {e}");
        }
        let e = SpanTree::build(&[span("group/a", 0, 2), span("group/a/tile/0/think", 0, 1)])
            .unwrap_err();
        assert!(e.to_string().contains("think"), "{e}");
    }

    #[test]
    fn fault_spans_collect_without_disturbing_the_group_timeline() {
        let spans = vec![
            span("job/0", 0, 40),
            span("job/0/group/a", 0, 20),
            span("job/0/group/a/tile/0/compute", 0, 20),
            span("fault/pe", 5, 12),
            span("fault/dram", 20, 25),
            span("job/0/group/b", 20, 40),
            span("job/0/group/b/tile/0/compute", 20, 40),
        ];
        let tree = SpanTree::build(&spans).unwrap();
        assert_eq!(tree.groups.len(), 2);
        assert_eq!(tree.jobs.len(), 1);
        assert_eq!(tree.faults.len(), 2);
        assert_eq!(tree.faults[0].kind, "pe");
        assert_eq!(tree.fault_lost_cycles(), 12);
        // Fault spans do not create idle gaps or extend the makespan.
        assert_eq!(tree.makespan, 40);
        assert!(tree.idle_gaps.is_empty());
    }

    #[test]
    fn empty_stream_builds_an_empty_tree() {
        let tree = SpanTree::build(&[]).unwrap();
        assert_eq!(tree.makespan, 0);
        assert_eq!(tree.overlap(), 0.0);
        assert!(tree.idle_gaps.is_empty());
    }
}
