//! Fuzz-ish robustness tests for the trace parser: truncated, reordered,
//! duplicated and byte-mutated inputs derived from a *real* runtime obs
//! stream. The contract under attack is the module promise of
//! `mocha_trace::event`: parsing never panics — every failure is a
//! [`TraceError`] naming a 1-based input line — and inputs that stay
//! well-formed (reorderings, duplications of whole lines) parse cleanly.
//!
//! Mutations are drawn from the model RNG with fixed seeds, so every case
//! reproduces exactly.

use mocha_model::rng::ModelRng;
use mocha_obs::MemRecorder;
use mocha_runtime::{generate, run_with, Mix, RuntimeConfig, TrafficConfig};
use mocha_trace::{parse_input, parse_stream, SpanTree, TraceError};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A real obs stream: the R1-style quick runtime smoke.
fn runtime_stream() -> String {
    let traffic = TrafficConfig {
        jobs: 4,
        load: 2.0,
        seed: 7,
        mix: Mix::Quick,
    };
    let mut rec = MemRecorder::new();
    run_with(&RuntimeConfig::default(), &generate(&traffic), &mut rec);
    rec.to_jsonl()
}

/// Parses under `catch_unwind`: any panic fails the test with the input
/// that triggered it; otherwise returns the ordinary parse result.
fn must_not_panic(text: &str, what: &str) -> Result<mocha_trace::Stream, TraceError> {
    catch_unwind(AssertUnwindSafe(|| parse_stream(text)))
        .unwrap_or_else(|_| panic!("{what}: parse_stream panicked on {text:?}"))
}

#[test]
fn every_byte_truncation_errors_with_a_line_number_or_parses() {
    let text = runtime_stream();
    let lines = text.lines().count();
    // Truncating at every byte is O(bytes²) on a big stream; step through
    // the prefix space instead, always including the hostile region around
    // each line boundary (mid-record cuts) plus a byte-level sweep of the
    // first two lines.
    let mut cuts: Vec<usize> = (0..text.len().min(200)).collect();
    let mut pos = 0;
    for line in text.lines() {
        pos += line.len() + 1;
        for d in [3usize, 2, 1] {
            cuts.push(pos.saturating_sub(d));
        }
        cuts.push(pos.min(text.len()));
    }
    for cut in cuts {
        let Some(prefix) = text.get(..cut) else {
            continue;
        };
        match must_not_panic(prefix, "truncation") {
            // A cut at a line boundary leaves a well-formed shorter stream.
            Ok(_) => {}
            Err(e) => {
                assert!(e.line >= 1, "cut {cut}: line must be 1-based");
                assert!(
                    e.line <= lines,
                    "cut {cut}: line {} beyond input ({lines} lines)",
                    e.line
                );
                // The error formats as the scriptable one-liner.
                assert!(e.to_string().starts_with(&format!("line {}: ", e.line)));
            }
        }
    }
}

#[test]
fn reordered_streams_parse_and_keep_the_same_totals() {
    let text = runtime_stream();
    let baseline = parse_stream(&text).expect("baseline parses");
    let mut lines: Vec<&str> = text.lines().collect();
    for seed in 0..8u64 {
        let mut rng = ModelRng::seed_from_u64(seed);
        // Fisher–Yates on whole lines: spans move around (stream order is
        // presentation, not validity), counters still accumulate to the
        // same totals.
        for i in (1..lines.len()).rev() {
            lines.swap(i, rng.gen_range(0usize..=i));
        }
        let shuffled = lines.join("\n");
        let s = must_not_panic(&shuffled, "reorder").expect("reordered stream stays parseable");
        assert_eq!(s.counters, baseline.counters, "seed {seed}");
        assert_eq!(s.hists, baseline.hists, "seed {seed}");
        assert_eq!(s.spans.len(), baseline.spans.len(), "seed {seed}");
    }
}

#[test]
fn duplicated_span_lines_parse_and_tree_building_never_panics() {
    let text = runtime_stream();
    let span_line = text
        .lines()
        .find(|l| l.contains("\"span\""))
        .expect("stream has spans");
    // Duplicate a span line throughout: parsing must accept it (duplicate
    // spans are representable) and downstream tree-building must either
    // build or refuse with an error — never panic.
    let doubled: String = text
        .lines()
        .flat_map(|l| {
            let dup = l == span_line;
            std::iter::once(l).chain(dup.then_some(span_line))
        })
        .collect::<Vec<_>>()
        .join("\n");
    let s = must_not_panic(&doubled, "duplicate-span").expect("duplicated span still parses");
    let outcome = catch_unwind(AssertUnwindSafe(|| SpanTree::build(&s.spans)));
    assert!(
        outcome.is_ok(),
        "SpanTree::build panicked on duplicate span"
    );
}

#[test]
fn random_byte_mutations_never_panic_the_parser() {
    // Keep the base stream small so many mutants stay cheap.
    let mut rec = MemRecorder::new();
    {
        use mocha_obs::Recorder;
        rec.span(|| "job/0".into(), 0, 50);
        rec.span(|| "job/0/group/conv1".into(), 0, 30);
        rec.add("runtime.jobs_admitted", 2);
        rec.add_f64("fabric.codec_priced_pj", 1.5);
        rec.sample("core.group_cycles", 30);
    }
    let base = rec.to_jsonl().into_bytes();
    for seed in 0..512u64 {
        let mut rng = ModelRng::seed_from_u64(seed);
        let mut bytes = base.clone();
        for _ in 0..=rng.gen_range(0usize..4) {
            let i = rng.gen_range(0usize..bytes.len());
            match rng.gen_range(0u32..3) {
                0 => bytes[i] = rng.gen_range(0u32..=255) as u8, // junk byte
                1 => {
                    bytes.remove(i);
                }
                _ => bytes.insert(i, rng.gen_range(0u32..=255) as u8),
            }
        }
        let Ok(text) = String::from_utf8(bytes) else {
            continue; // the parser API takes &str; invalid UTF-8 can't reach it
        };
        match must_not_panic(&text, "mutation") {
            Ok(_) => {}
            Err(e) => assert!(e.line >= 1, "seed {seed}: line must be 1-based"),
        }
        // The sniffing front door must be as solid as the stream parser.
        let outcome = catch_unwind(AssertUnwindSafe(|| parse_input(&text)));
        assert!(outcome.is_ok(), "seed {seed}: parse_input panicked");
    }
}

#[test]
fn junk_inputs_error_on_line_one_not_panic() {
    for junk in [
        "\u{0}\u{1}\u{2}",
        "]]]}}}",
        "{\"event\":",
        "{\"event\":\"span\"",
        "\"span\"",
        "🦀🦀🦀",
        "{}",
        "[1,2,3]",
        "null",
    ] {
        let e = must_not_panic(junk, "junk").expect_err("junk must not parse");
        assert_eq!(e.line, 1, "junk {junk:?}");
    }
}

#[test]
fn snapshot_shaped_junk_goes_through_parse_input_safely() {
    // `parse_input` sniffs for a snapshot object; hostile near-snapshots
    // must come back as errors, not panics.
    for text in [
        "{\"counters\":{\"a\":-1}}",
        "{\"counters\":{\"a\":\"x\"}}",
        "{\"counters\":{},\"fcounters\":{\"f\":\"y\"}}",
        "{\"counters\":{},\"hists\":{\"h\":{}}}",
        "{\"counters\":{},\"hists\":{\"h\":{\"count\":1}}}",
    ] {
        let outcome = catch_unwind(AssertUnwindSafe(|| parse_input(text)));
        let res = outcome.unwrap_or_else(|_| panic!("parse_input panicked on {text:?}"));
        assert!(res.is_err(), "{text:?} should be rejected");
    }
}
