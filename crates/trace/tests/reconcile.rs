//! The acceptance contract of the trace layer, asserted end-to-end against
//! real simulator and runtime streams:
//!
//! 1. **Exact energy reconciliation** — event counts rebuilt from the
//!    stream are bit-identical to the simulator's golden totals, the priced
//!    breakdown matches bit for bit, and the attojoule phase/layer ledgers
//!    sum to the priced total *exactly*.
//! 2. **Determinism** — two identical seeded runs produce byte-identical
//!    summaries, profile JSON and Chrome exports.

use mocha_core::{Accelerator, Objective, Simulator};
use mocha_energy::EnergyTable;
use mocha_model::{gen::SparsityProfile, gen::Workload, network};
use mocha_obs::MemRecorder;
use mocha_trace::energy::{aj, attribute, counts_from_stream};
use mocha_trace::{parse_stream, Profile, SpanTree};

fn simulate_stream(net: &str, seed: u64) -> (String, mocha_core::RunMetrics) {
    let workload = Workload::generate(
        network::by_name(net).expect("known network"),
        SparsityProfile::NOMINAL,
        seed,
    );
    let sim = Simulator::new(Accelerator::mocha(Objective::Edp));
    let mut rec = MemRecorder::new();
    let run = sim.run_with(&workload, &mut rec);
    (rec.to_jsonl(), run)
}

#[test]
fn energy_attribution_reconciles_exactly_with_the_simulator_golden() {
    for net in ["tiny", "lenet5"] {
        let (text, run) = simulate_stream(net, 11);
        let stream = parse_stream(&text).expect("stream parses");
        let tree = SpanTree::build(&stream.spans).expect("tree builds");
        let table = EnergyTable::default();

        // 1. Bit-identical event counts (including the f64 priced_pj).
        let golden = run.events();
        let rebuilt = counts_from_stream(&stream);
        assert_eq!(rebuilt, golden, "{net}: rebuilt counts must equal golden");
        assert_eq!(
            rebuilt.priced_pj.to_bits(),
            golden.priced_pj.to_bits(),
            "{net}: priced_pj must round-trip bit-exactly"
        );

        // 2. Bit-identical priced breakdown, hence total energy.
        let a = attribute(&tree, &stream, &table);
        let golden_breakdown = table.price(&golden);
        assert_eq!(
            a.breakdown.total_pj().to_bits(),
            golden_breakdown.total_pj().to_bits(),
            "{net}: breakdown total must be bit-identical"
        );

        // 3. The integer ledgers balance exactly against the golden.
        let golden_aj = aj(golden_breakdown.compute_pj)
            + aj(golden_breakdown.rf_pj)
            + aj(golden_breakdown.spm_pj)
            + aj(golden_breakdown.noc_pj)
            + aj(golden_breakdown.dram_pj)
            + aj(golden_breakdown.codec_pj)
            + aj(golden_breakdown.leakage_pj);
        assert_eq!(a.total_aj, golden_aj, "{net}: attojoule total");
        assert_eq!(a.phases.total_aj(), golden_aj, "{net}: phase ledger");
        let layer_sum: u128 = a.layers.iter().map(|l| l.total_aj()).sum();
        assert_eq!(layer_sum, golden_aj, "{net}: layer ledger");
        assert_eq!(a.phases.unattributed_aj, 0, "{net}: fully attributed");

        // 4. The tree agrees with the run's timing.
        assert_eq!(tree.makespan, run.cycles(), "{net}: makespan");
        assert_eq!(tree.groups.len(), run.groups.len(), "{net}: group count");
        for (g, m) in tree.groups.iter().zip(&run.groups) {
            assert_eq!(g.cycles(), m.cycles, "{net}: group cycles");
            assert_eq!(
                g.critical.total(),
                m.cycles,
                "{net}: critical path covers the group makespan"
            );
        }
    }
}

#[test]
fn profile_json_summary_and_chrome_export_are_byte_identical_across_runs() {
    let (ta, _) = simulate_stream("tiny", 7);
    let (tb, _) = simulate_stream("tiny", 7);
    assert_eq!(ta, tb, "streams must already be byte-identical");

    let table = EnergyTable::default();
    let (pa, tree_a) = mocha_trace::profile_input(&ta, &table).unwrap();
    let (pb, tree_b) = mocha_trace::profile_input(&tb, &table).unwrap();
    assert_eq!(
        pa.to_json().to_string_pretty(),
        pb.to_json().to_string_pretty()
    );
    assert_eq!(pa.summary_text(), pb.summary_text());
    assert_eq!(
        mocha_trace::chrome::export(&tree_a).to_string_compact(),
        mocha_trace::chrome::export(&tree_b).to_string_compact()
    );
}

#[test]
fn runtime_stream_profiles_with_jobs_and_latency() {
    let traffic = mocha_runtime::TrafficConfig {
        jobs: 4,
        load: 2.0,
        seed: 9,
        mix: mocha_runtime::Mix::Quick,
    };
    let subs = mocha_runtime::generate(&traffic);
    let cfg = mocha_runtime::RuntimeConfig::default();
    let mut rec = MemRecorder::new();
    let report = mocha_runtime::run_with(&cfg, &subs, &mut rec);

    let table = EnergyTable::default();
    let stream = parse_stream(&rec.to_jsonl()).unwrap();
    let tree = SpanTree::build(&stream.spans).unwrap();
    let (profile, _) = Profile::build(&tree, &stream, &table);

    assert_eq!(profile.jobs as usize, report.jobs.len());
    assert!(profile.groups > 0);
    assert!(profile.latency.is_some(), "runtime streams carry latency");
    assert_eq!(profile.phases.total_aj(), {
        let a = attribute(&tree, &stream, &table);
        a.total_aj
    });
    assert_eq!(profile.phases.unattributed_aj, 0);
    // Every job's groups fit inside its span.
    for j in &tree.jobs {
        for &gi in &j.groups {
            assert!(tree.groups[gi].start >= j.start);
            assert!(tree.groups[gi].end <= j.end);
        }
    }
}

#[test]
fn profile_round_trips_through_saved_json() {
    let (text, _) = simulate_stream("tiny", 11);
    let table = EnergyTable::default();
    let (profile, _) = mocha_trace::profile_input(&text, &table).unwrap();
    let saved = profile.to_json().to_string_pretty();
    let loaded = Profile::from_json(&mocha_json::parse(&saved).unwrap()).unwrap();
    assert_eq!(profile, loaded);
    // A loaded baseline diffs clean against the live profile.
    let deltas = mocha_trace::diff::diff(&loaded, &profile);
    assert!(mocha_trace::diff::regressions(&deltas, 0.0).is_empty());
}
