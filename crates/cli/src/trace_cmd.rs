//! The `mocha-sim trace` subcommand family: `summary`, `export --chrome`
//! and `diff --fail-on-regression`.
//!
//! Exit codes keep the CLI's scriptable contract: 0 success, 2 for any
//! usage or input problem (one line on stderr, naming the offending input
//! line for malformed streams), and 1 is reserved for a *detected
//! regression* in `diff --fail-on-regression` — so CI can tell "the gate
//! tripped" from "the gate could not run".

use crate::args::Args;
use crate::commands;
use mocha_trace::{diff, Profile};

/// Reads a positional input: a file path, or `-` for stdin.
fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        use std::io::Read;
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        return Ok(text);
    }
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))
}

/// Loads a profile from either input shape: a saved profile JSON (sniffed
/// by the `mocha_trace_profile` marker) is loaded directly; anything else
/// is parsed as an obs stream/snapshot and profiled under `table`.
fn load_profile(path: &str, table: &mocha::energy::EnergyTable) -> Result<Profile, String> {
    let text = read_input(path)?;
    if let Ok(v) = mocha_json::parse(&text) {
        if v.get(mocha_trace::PROFILE_MARKER).is_some() {
            return Profile::from_json(&v).map_err(|e| format!("{path}: {e}"));
        }
    }
    let (profile, _) =
        mocha_trace::profile_input(&text, table).map_err(|e| format!("{path}: {e}"))?;
    Ok(profile)
}

/// `trace` subcommand dispatcher.
pub fn trace(args: &Args) -> i32 {
    match args.positional.first().map(String::as_str) {
        Some("summary") => summary(args),
        Some("export") => export(args),
        Some("diff") => diff_cmd(args),
        Some(other) => {
            eprintln!("unknown trace action {other:?} (summary|export|diff, see `mocha-sim help`)");
            2
        }
        None => {
            eprintln!("missing trace action (summary|export|diff, see `mocha-sim help`)");
            2
        }
    }
}

fn input_arg<'a>(args: &'a Args, what: &str) -> Result<&'a str, i32> {
    match args.positional.get(1) {
        Some(p) => Ok(p.as_str()),
        None => {
            eprintln!("missing {what} argument for `mocha-sim trace` (see `mocha-sim help`)");
            Err(2)
        }
    }
}

fn summary(args: &Args) -> i32 {
    if let Err(code) = commands::strict(args, 2, &["json", "energy"]) {
        return code;
    }
    let path = match input_arg(args, "<FILE|->") {
        Ok(p) => p,
        Err(code) => return code,
    };
    let table = commands::load_energy(args);
    let profile = match load_profile(path, &table) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    if args.flag("json") {
        println!("{}", profile.to_json().to_string_pretty());
    } else {
        print!("{}", profile.summary_text());
    }
    0
}

fn export(args: &Args) -> i32 {
    if let Err(code) = commands::strict(args, 2, &["chrome", "energy"]) {
        return code;
    }
    let path = match input_arg(args, "<FILE|->") {
        Ok(p) => p,
        Err(code) => return code,
    };
    let Some(out_path) = args.options.get("chrome").filter(|p| !p.is_empty()) else {
        eprintln!("missing --chrome OUT for `mocha-sim trace export` (see `mocha-sim help`)");
        return 2;
    };
    let text = match read_input(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let tree = match mocha_trace::parse_input(&text)
        .and_then(|s| mocha_trace::SpanTree::build(&s.spans))
    {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: {e}");
            return 2;
        }
    };
    if tree.groups.is_empty() && tree.jobs.is_empty() {
        eprintln!("{path}: no spans to export (snapshot or counter-only input?)");
        return 2;
    }
    let json = mocha_trace::chrome::export(&tree).to_string_compact();
    if let Err(e) = std::fs::write(out_path, json) {
        eprintln!("cannot write {out_path:?}: {e}");
        return 2;
    }
    0
}

fn diff_cmd(args: &Args) -> i32 {
    if let Err(code) = commands::strict(args, 3, &["fail-on-regression", "energy"]) {
        return code;
    }
    let (Some(a_path), Some(b_path)) = (args.positional.get(1), args.positional.get(2)) else {
        eprintln!("`mocha-sim trace diff` needs two inputs <A> <B> (see `mocha-sim help`)");
        return 2;
    };
    let threshold = match args.options.get("fail-on-regression") {
        None => None,
        Some(v) => match v.parse::<f64>() {
            Ok(t) if t >= 0.0 => Some(t),
            _ => {
                eprintln!("--fail-on-regression expects a non-negative percentage, got {v:?}");
                return 2;
            }
        },
    };
    let table = commands::load_energy(args);
    let (a, b) = match (load_profile(a_path, &table), load_profile(b_path, &table)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let deltas = diff::diff(&a, &b);
    print!("{}", diff::render(&deltas, threshold));
    if let Some(t) = threshold {
        let failed = diff::regressions(&deltas, t);
        if !failed.is_empty() {
            let names: Vec<&str> = failed.iter().map(|d| d.name).collect();
            eprintln!(
                "regression: {} beyond {t} % vs baseline {a_path}",
                names.join(", ")
            );
            return 1;
        }
    }
    0
}
