//! The serving front-end: `mocha-sim serve` and `mocha-sim runtime`.
//!
//! `serve` speaks a std-only JSON-lines protocol: one job request per line,
//! a blank line (or EOF) closes the batch, and the runtime's per-job
//! reports plus a summary come back as JSON lines. The same handler runs
//! over stdin/stdout or a TCP socket (`--tcp ADDR`), so a shell pipe and a
//! network client see identical behaviour.
//!
//! `runtime` is the closed-loop twin: it generates a seeded Poisson-like
//! arrival trace over a tenant mix and prints per-job rows and fleet
//! aggregates, in a table or as JSON.

use crate::args::Args;
use crate::commands;
use mocha::obs::{names, MemRecorder, Recorder};
use mocha::runtime::{
    self, JobSpec, LeasePolicy, Mix, RuntimeConfig, RuntimeReport, Submission, TrafficConfig,
};
use mocha_json::{FromJson, ToJson};
use std::io::{BufRead, BufReader, Write};

/// Span retention cap for the server's always-on recorder: counters and
/// histograms are O(names) and never capped, but spans grow with traffic,
/// so a long-running server keeps the first ~100k and counts the rest in
/// `spans_dropped`.
const SERVE_SPAN_CAP: usize = 100_000;

/// Builds the runtime configuration shared by `serve` and `runtime` from
/// `--fabric`, `--policy`, `--max-tenants`, `--no-verify` and `--faults`.
fn runtime_config(args: &Args) -> Result<RuntimeConfig, String> {
    let fabric = match args.options.get("fabric") {
        None => mocha::fabric::FabricConfig::mocha_quad(),
        Some(_) => commands::load_fabric(args),
    };
    let policy_name = args.opt("policy", "adaptive");
    let policy = LeasePolicy::parse(&policy_name)
        .ok_or_else(|| format!("unknown policy {policy_name:?} (adaptive|static)"))?;
    let max_tenants = args.opt_u64("max-tenants", 4) as usize;
    if max_tenants == 0 {
        return Err("--max-tenants must be at least 1".into());
    }
    let faults = match args.options.get("faults") {
        None => None,
        Some(spec) => Some(mocha::fault::FaultPlan::parse(spec)?),
    };
    Ok(RuntimeConfig {
        fabric,
        policy,
        max_tenants,
        verify: !args.flag("no-verify"),
        // `--threads` was already folded into the process default by main;
        // 0 defers to that (and to all cores when the flag is absent).
        threads: 0,
        faults,
    })
}

/// Parses one JSON-lines request into a submission.
fn parse_request(line: &str) -> Result<Submission, String> {
    let v = mocha_json::parse(line).map_err(|e| format!("bad request JSON: {e}"))?;
    let spec = JobSpec::from_json(&v).map_err(|e| format!("bad request: {e}"))?;
    spec.validate()?;
    let arrival_cycle = match v.get("arrival_cycle") {
        None => 0,
        Some(c) => c
            .as_u64()
            .ok_or("arrival_cycle must be a non-negative integer")?,
    };
    Ok(Submission {
        arrival_cycle,
        spec,
    })
}

/// Reads a batch of requests, runs the runtime, writes responses. Returns
/// an error message for protocol failures (reported and non-zero-exited by
/// the caller in stdin mode, written to the peer in TCP mode).
fn serve_stream(
    cfg: &RuntimeConfig,
    rec: &mut MemRecorder,
    reader: impl BufRead,
    writer: &mut impl Write,
) -> Result<(), String> {
    let mut subs = Vec::new();
    let mut first = true;
    for (n, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("read error: {e}"))?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            break; // blank line closes the batch
        }
        // A batch whose first line is the bare word `stats` is a snapshot
        // request: answer with the recorder's state and close.
        if first && trimmed == "stats" {
            rec.add(names::SERVE_STATS_REQUESTS, 1);
            writeln!(writer, "{}", stats_json(rec).to_string_compact())
                .map_err(|e| format!("write error: {e}"))?;
            return Ok(());
        }
        first = false;
        rec.add(names::SERVE_REQUESTS, 1);
        let sub = parse_request(trimmed).map_err(|e| {
            rec.add(names::SERVE_REQUESTS_REJECTED, 1);
            format!("line {}: {e}", n + 1)
        })?;
        subs.push(sub);
    }
    // The scheduler wants non-decreasing arrivals; clients may interleave.
    subs.sort_by_key(|s| s.arrival_cycle);
    let report = runtime::run_with(cfg, &subs, rec);
    rec.add(names::SERVE_BATCHES, 1);
    for job in &report.jobs {
        writeln!(writer, "{}", job.to_json().to_string_compact())
            .map_err(|e| format!("write error: {e}"))?;
    }
    writeln!(writer, "{}", summary_json(&report).to_string_compact())
        .map_err(|e| format!("write error: {e}"))?;
    Ok(())
}

/// The `stats` response: the recorder snapshot (counters, histogram
/// summaries, span tally) plus a derived `jobs` block whose counts
/// reconcile by construction: `admitted == finished + failed + in_flight`
/// (admission counts each job once; fault re-admissions do not inflate it).
fn stats_json(rec: &MemRecorder) -> mocha_json::Value {
    let admitted = rec.counter(names::RUNTIME_JOBS_ADMITTED);
    let finished = rec.counter(names::RUNTIME_JOBS_FINISHED);
    let failed = rec.counter(names::RUNTIME_JOBS_FAILED);
    let mut snap = rec.snapshot();
    if let mocha_json::Value::Obj(map) = &mut snap {
        map.insert(
            "jobs".to_string(),
            mocha_json::jobj! {
                "submitted" => rec.counter(names::RUNTIME_JOBS_SUBMITTED),
                "admitted" => admitted,
                "finished" => finished,
                "retried" => rec.counter(names::RUNTIME_JOBS_RETRIED),
                "failed" => failed,
                "rejected" => rec.counter(names::SERVE_REQUESTS_REJECTED),
                "in_flight" => admitted - finished - failed,
            },
        );
    }
    snap
}

/// The fleet-level summary line (job list omitted — jobs were streamed
/// above).
fn summary_json(report: &RuntimeReport) -> mocha_json::Value {
    mocha_json::jobj! {
        "summary" => true,
        "policy" => report.policy.as_str(),
        "completed" => report.completed(),
        "horizon" => report.horizon,
        "jobs_per_mcycle" => report.jobs_per_mcycle(),
        "retried" => report.retried,
        "failed" => report.failed,
        "latency_p50" => report.latency_percentile(50.0),
        "latency_p95" => report.latency_percentile(95.0),
        "latency_p99" => report.latency_percentile(99.0),
        "mean_queue_wait" => report.mean_queue_wait(),
        "utilization" => report.utilization(),
        "gops" => report.gops(),
        "gops_per_watt" => report.gops_per_watt(),
    }
}

/// `serve` subcommand.
pub fn serve(args: &Args) -> i32 {
    if let Err(code) = commands::strict(
        args,
        0,
        &[
            "policy",
            "max-tenants",
            "no-verify",
            "fabric",
            "tcp",
            "once",
            "threads",
            "faults",
        ],
    ) {
        return code;
    }
    let cfg = match runtime_config(args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let mut rec = MemRecorder::with_span_cap(SERVE_SPAN_CAP);
    match args.options.get("tcp") {
        None => {
            let stdin = std::io::stdin();
            let mut stdout = std::io::stdout().lock();
            match serve_stream(&cfg, &mut rec, stdin.lock(), &mut stdout) {
                Ok(()) => 0,
                Err(e) => {
                    eprintln!("{e}");
                    2
                }
            }
        }
        Some(addr) => {
            let listener = match std::net::TcpListener::bind(addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("cannot bind {addr:?}: {e}");
                    return 2;
                }
            };
            match listener.local_addr() {
                Ok(a) => eprintln!("listening on {a}"),
                Err(_) => eprintln!("listening on {addr}"),
            }
            loop {
                let (stream, peer) = match listener.accept() {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("accept failed: {e}");
                        return 2;
                    }
                };
                eprintln!("batch from {peer}");
                let reader = match stream.try_clone() {
                    Ok(r) => BufReader::new(r),
                    Err(e) => {
                        eprintln!("cannot clone socket: {e}");
                        continue;
                    }
                };
                let mut writer = stream;
                if let Err(e) = serve_stream(&cfg, &mut rec, reader, &mut writer) {
                    // Report protocol errors to the peer, stay up.
                    let _ = writeln!(
                        writer,
                        "{}",
                        mocha_json::jobj! { "error" => e.as_str() }.to_string_compact()
                    );
                }
                if args.flag("once") {
                    return 0;
                }
            }
        }
    }
}

/// `runtime` subcommand.
pub fn runtime_cmd(args: &Args) -> i32 {
    if let Err(code) = commands::strict(
        args,
        0,
        &[
            "jobs",
            "load",
            "seed",
            "policy",
            "max-tenants",
            "mix",
            "no-verify",
            "json",
            "fabric",
            "obs",
            "threads",
            "faults",
        ],
    ) {
        return code;
    }
    let cfg = match runtime_config(args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let mix_name = args.opt("mix", "quick");
    let Some(mix) = Mix::parse(&mix_name) else {
        eprintln!("unknown mix {mix_name:?} (quick|full)");
        return 2;
    };
    let traffic = TrafficConfig {
        jobs: args.opt_u64("jobs", 8) as usize,
        load: args.opt_f64("load", 2.0),
        seed: args.opt_u64("seed", 42),
        mix,
    };
    if traffic.load <= 0.0 {
        eprintln!("--load must be positive");
        return 2;
    }
    let subs = runtime::generate(&traffic);
    // With `--obs` the run is recorded and the full event stream exported
    // as JSON lines. The stream is a pure function of the seeded run, so
    // identical invocations produce byte-identical output.
    let obs_path = args.options.get("obs").cloned();
    let mut rec = MemRecorder::new();
    let report = match &obs_path {
        None => runtime::run(&cfg, &subs),
        Some(_) => runtime::run_with(&cfg, &subs, &mut rec),
    };

    use std::fmt::Write as _;
    let mut out = String::new();
    if args.flag("json") {
        let _ = writeln!(out, "{}", report.to_json().to_string_pretty());
    } else {
        let _ = writeln!(
            out,
            "{} jobs ({} mix, load {:.2}, seed {}) on {}x{} fabric, policy {}",
            traffic.jobs,
            mix.name(),
            traffic.load,
            traffic.seed,
            cfg.fabric.pe_rows,
            cfg.fabric.pe_cols,
            cfg.policy.name(),
        );
        let _ = writeln!(
            out,
            "  {:>3} {:<10} {:<8} {:>10} {:>10} {:>10} {:>10} {:>7} {:>8}",
            "job",
            "network",
            "priority",
            "arrival",
            "wait",
            "latency",
            "busy",
            "groups",
            "remorphs"
        );
        for j in &report.jobs {
            let _ = writeln!(
                out,
                "  {:>3} {:<10} {:<8} {:>10} {:>10} {:>10} {:>10} {:>7} {:>8}",
                j.id,
                j.spec.network,
                j.spec
                    .priority
                    .to_json()
                    .as_str()
                    .unwrap_or("?")
                    .to_string(),
                j.arrival,
                j.queue_wait(),
                j.latency(),
                j.busy_cycles,
                j.groups,
                j.remorphs,
            );
        }
        if cfg.faults.is_some() {
            let _ = writeln!(
                out,
                "faults: {} of {} jobs retried, {} failed ({} completed)",
                report.retried,
                traffic.jobs,
                report.failed,
                report.completed(),
            );
        }
        let _ = writeln!(
            out,
            "throughput {:.3} jobs/Mcycle | p50 {} p95 {} p99 {} cycles | util {:.1} % | {:.1} GOPS | {:.1} GOPS/W",
            report.jobs_per_mcycle(),
            report.latency_percentile(50.0),
            report.latency_percentile(95.0),
            report.latency_percentile(99.0),
            100.0 * report.utilization(),
            report.gops(),
            report.gops_per_watt(),
        );
    }

    match obs_path.as_deref() {
        None => print!("{out}"),
        // `--obs -`: the event stream owns stdout (clean for piping into
        // `mocha-sim trace`); the human report moves to stderr.
        Some("-") => {
            print!("{}", rec.to_jsonl());
            eprint!("{out}");
        }
        Some(path) => {
            if let Err(e) = std::fs::write(path, rec.to_jsonl()) {
                eprintln!("cannot write {path:?}: {e}");
                return 2;
            }
            print!("{out}");
        }
    }
    0
}
