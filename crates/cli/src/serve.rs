//! The serving front-end: `mocha-sim serve` and `mocha-sim runtime`.
//!
//! `serve` speaks a std-only JSON-lines protocol: one job request per line,
//! a blank (or whitespace/CRLF-only) line closes the batch, and the
//! runtime's per-job reports plus a summary come back as JSON lines. Over
//! stdin/stdout one batch is served; with `--tcp ADDR` the deterministic
//! reactor of [`mocha::serve`] multiplexes many concurrent clients and
//! merges every batch that completes in one poll round into a single
//! runtime invocation. With `--shed-policy` the server predicts each
//! request's start from calibrated service times and sheds doomed or
//! over-queued work with an explicit `shed` response instead of queueing it
//! unboundedly; `--slo CYCLES` supplies the default deadline.
//!
//! `serve --open-loop` is the offline twin used by experiment R3: a seeded
//! heavy-tailed open-loop trace (or a `--trace FILE` replay) driven through
//! the calibrated queueing model, printing goodput/latency aggregates.
//!
//! `runtime` is the closed-loop generator: it creates a seeded arrival
//! trace over a tenant mix and prints per-job rows and fleet aggregates,
//! in a table or as JSON.

use crate::args::Args;
use crate::commands;
use crate::config;
use mocha::engine::Engine;
use mocha::obs::{names, MemRecorder, Recorder, WindowSpec, WindowedMetrics};
use mocha::runtime::{
    self, DecisionCache, JobSpec, Mix, RuntimeConfig, RuntimeReport, Submission, TrafficConfig,
};
use mocha::serve::{
    read_line_capped, run_open_loop, serve_reactor, traffic, windows_from_open_loop,
    windows_from_runtime, BatchHandler, Calibration, ClientBatch, LineRead, OpenLoopParams,
    ReactorConfig, Request, RequestOutcome, ShedPolicy, MAX_LINE_BYTES,
};
use mocha_json::{FromJson, ToJson};
use std::collections::BTreeMap;

/// Span retention cap for the server's always-on recorder: counters and
/// histograms are O(names) and never capped, but spans grow with traffic,
/// so a long-running server keeps the first ~100k and counts the rest in
/// `spans_dropped`.
const SERVE_SPAN_CAP: usize = 100_000;

/// Windowed telemetry for a long-running server (`--metrics-window`).
///
/// Every runtime batch restarts its clock at zero, so batch-relative
/// cycles are offset by a running server clock before they land in the
/// window store — consecutive batches occupy consecutive windows and the
/// export stays a pure function of the request sequence (byte-identical
/// at any `--threads`).
struct ServeMetrics {
    m: WindowedMetrics,
    /// Cycle offset applied to the next batch's relative times.
    clock: u64,
    /// Cache (hits, misses) already attributed to earlier batches.
    cache_seen: (u64, u64),
}

impl ServeMetrics {
    fn new(spec: WindowSpec) -> Self {
        ServeMetrics {
            m: WindowedMetrics::new(spec),
            clock: 0,
            cache_seen: (0, 0),
        }
    }

    /// Folds one merged batch into the windows: sheds (with their policy
    /// reason) and admissions at arrival, completions at finish with
    /// latency/wait histograms and the per-request deadline verdict, and
    /// the batch's cache hit/miss deltas at the batch-start window. The
    /// clock then advances past everything the batch touched.
    #[allow(clippy::too_many_arguments)]
    fn absorb_batch(
        &mut self,
        shed: &[(u64, usize, String)],
        reason: &'static str,
        kept: &[(usize, Submission, Option<u64>)],
        default_slo: Option<u64>,
        report: &RuntimeReport,
        rec: &MemRecorder,
    ) {
        let spec = self.m.windows.spec();
        let clock = self.clock;
        if default_slo.is_some() || kept.iter().any(|(_, _, d)| d.is_some()) {
            self.m.enable_slo();
        }
        let mut touched = 0u64;
        for (arrival, client, network) in shed {
            let tenant = client.to_string();
            let labels = self.m.windows.intern(&[
                ("tenant", &tenant),
                ("template", network),
                ("reason", reason),
            ]);
            let at = clock + arrival;
            self.m.windows.add_at(names::SERVE_REQUESTS, labels, at, 1);
            self.m.windows.add_at(names::SERVE_SHED, labels, at, 1);
            if let Some(slo) = self.m.slo.as_mut() {
                slo.error(spec.cell(at), 1);
            }
            touched = touched.max(*arrival);
        }
        for (client, sub, _) in kept {
            let tenant = client.to_string();
            let labels = self
                .m
                .windows
                .intern(&[("tenant", &tenant), ("template", &sub.spec.network)]);
            let at = clock + sub.arrival_cycle;
            self.m.windows.add_at(names::SERVE_REQUESTS, labels, at, 1);
            self.m.windows.add_at(names::SERVE_ADMITTED, labels, at, 1);
            touched = touched.max(sub.arrival_cycle);
        }
        for job in &report.jobs {
            let (client, sub, deadline) = &kept[job.id as usize];
            let tenant = client.to_string();
            let labels = self
                .m
                .windows
                .intern(&[("tenant", &tenant), ("template", &sub.spec.network)]);
            let tmpl = self.m.windows.intern(&[("template", &sub.spec.network)]);
            let finish = clock + job.finished;
            self.m
                .windows
                .add_at(names::SERVE_COMPLETED, labels, finish, 1);
            let latency = job.finished - job.arrival;
            self.m
                .windows
                .sample_at(names::HIST_JOB_LATENCY, tmpl, finish, latency);
            self.m.windows.sample_at(
                names::HIST_QUEUE_WAIT,
                tmpl,
                finish,
                job.admitted - job.arrival,
            );
            if let Some(deadline) = deadline.or(default_slo) {
                let name = if latency <= deadline {
                    names::SERVE_IN_SLO
                } else {
                    names::SERVE_DEADLINE_MISSES
                };
                self.m.windows.add_at(name, labels, finish, 1);
                let slo = self.m.slo.as_mut().expect("deadline implies tracker");
                if latency <= deadline {
                    slo.good(spec.cell(finish), 1);
                } else {
                    slo.miss(spec.cell(finish), 1);
                }
            }
        }
        if report.failed > 0 {
            let at = clock + report.horizon;
            self.m.windows.add_at(
                names::SERVE_FAILED,
                mocha::obs::LabelSet::EMPTY,
                at,
                report.failed as u64,
            );
            if let Some(slo) = self.m.slo.as_mut() {
                slo.error(spec.cell(at), report.failed as u64);
            }
        }
        let hits = rec.counter(names::CACHE_HITS);
        let misses = rec.counter(names::CACHE_MISSES);
        let (seen_h, seen_m) = self.cache_seen;
        if hits > seen_h {
            let l = self.m.windows.intern(&[("result", "hit")]);
            self.m
                .windows
                .add_at(names::CACHE_DECISIONS, l, clock, hits - seen_h);
        }
        if misses > seen_m {
            let l = self.m.windows.intern(&[("result", "miss")]);
            self.m
                .windows
                .add_at(names::CACHE_DECISIONS, l, clock, misses - seen_m);
        }
        self.cache_seen = (hits, misses);
        let advance = report.horizon.max(touched);
        self.m.windows.observe_cycle(clock + advance);
        self.clock = clock + advance + 1;
    }
}

/// Long-lived server state: the runtime configuration, the admission
/// policy, the lazily-built per-template service-time cache backing shed
/// decisions, and the recorder every batch accumulates into.
struct ServeState {
    cfg: RuntimeConfig,
    shed: ShedPolicy,
    /// Default deadline (cycles after arrival) for requests that do not
    /// carry their own `deadline_cycles`.
    slo: Option<u64>,
    services: BTreeMap<(String, String), u64>,
    rec: MemRecorder,
    /// Morph-decision cache shared across batches (with `--cache`): later
    /// batches reuse decisions from earlier ones, and the `cache.*`
    /// counters in `stats` expose the hit rate.
    cache: Option<DecisionCache>,
    /// Windowed telemetry behind the `metrics` query (`--metrics-window`).
    metrics: Option<ServeMetrics>,
}

impl ServeState {
    fn new(
        cfg: RuntimeConfig,
        shed: ShedPolicy,
        slo: Option<u64>,
        window: Option<WindowSpec>,
    ) -> Self {
        let cache = cfg.cache.then(DecisionCache::new);
        ServeState {
            cfg,
            shed,
            slo,
            services: BTreeMap::new(),
            rec: MemRecorder::with_span_cap(SERVE_SPAN_CAP),
            cache,
            metrics: window.map(ServeMetrics::new),
        }
    }

    /// Calibrated one-slot service time for a spec's template, measured on
    /// first use and cached for the life of the server.
    fn service(&mut self, spec: &JobSpec) -> u64 {
        let key = (spec.network.clone(), spec.profile.clone());
        if let Some(&cycles) = self.services.get(&key) {
            return cycles;
        }
        let cal = Calibration::measure(
            &self.cfg.fabric,
            self.cfg.max_tenants,
            std::slice::from_ref(spec),
            Engine::configured(),
        )
        .expect("spec validated at parse time");
        let cycles = cal.service(spec);
        self.services.insert(key, cycles);
        cycles
    }
}

/// Parses one JSON-lines request into a submission plus its optional
/// per-request deadline.
fn parse_request(line: &str) -> Result<(Submission, Option<u64>), String> {
    let v = mocha_json::parse(line).map_err(|e| format!("bad request JSON: {e}"))?;
    let spec = JobSpec::from_json(&v).map_err(|e| format!("bad request: {e}"))?;
    spec.validate()?;
    let arrival_cycle = match v.get("arrival_cycle") {
        None => 0,
        Some(c) => c
            .as_u64()
            .ok_or("arrival_cycle must be a non-negative integer")?,
    };
    let deadline = match v.get("deadline_cycles") {
        None => None,
        Some(d) => Some(
            d.as_u64()
                .ok_or("deadline_cycles must be a non-negative integer")?,
        ),
    };
    Ok((
        Submission {
            arrival_cycle,
            spec,
        },
        deadline,
    ))
}

/// Runs one round of client batches through the runtime together: requests
/// are parsed per client (a bad line fails only that client), merged
/// across clients in arrival order, optionally filtered by the shed
/// policy, and executed as a single runtime batch. Returns one response
/// (or protocol error) per input batch, in order.
fn run_batches(state: &mut ServeState, batches: &[Vec<String>]) -> Vec<Result<String, String>> {
    let mut results: Vec<Option<Result<String, String>>> =
        (0..batches.len()).map(|_| None).collect();
    let mut merged: Vec<(usize, Submission, Option<u64>)> = Vec::new();
    let mut valid: Vec<usize> = Vec::new();
    for (c, lines) in batches.iter().enumerate() {
        let mut parsed = Vec::new();
        let mut bad = None;
        for (n, line) in lines.iter().enumerate() {
            state.rec.add(names::SERVE_REQUESTS, 1);
            match parse_request(line.trim()) {
                Ok(p) => parsed.push(p),
                Err(e) => {
                    state.rec.add(names::SERVE_REQUESTS_REJECTED, 1);
                    bad = Some(format!("line {}: {e}", n + 1));
                    break;
                }
            }
        }
        match bad {
            Some(e) => results[c] = Some(Err(e)),
            None => {
                merged.extend(parsed.into_iter().map(|(sub, d)| (c, sub, d)));
                valid.push(c);
            }
        }
    }
    if valid.is_empty() {
        return results
            .into_iter()
            .map(|r| r.expect("every client resolved"))
            .collect();
    }
    // The scheduler wants non-decreasing arrivals; clients may interleave.
    merged.sort_by_key(|(_, s, _)| s.arrival_cycle);

    // Admission control: predict every start from the calibrated service
    // times and drop doomed (or over-queued) requests with an explicit
    // shed line instead of queueing them unboundedly.
    let mut shed_lines: Vec<Vec<String>> = (0..batches.len()).map(|_| Vec::new()).collect();
    let mut shed_events: Vec<(u64, usize, String)> = Vec::new();
    let mut batch_shed = 0u64;
    let kept: Vec<(usize, Submission, Option<u64>)> = if state.shed.active() && !merged.is_empty() {
        let requests: Vec<Request> = merged
            .iter()
            .map(|(c, s, d)| Request {
                arrival: s.arrival_cycle,
                tenant: *c as u64,
                deadline: d.or(state.slo),
                spec: s.spec.clone(),
            })
            .collect();
        let services: Vec<u64> = merged
            .iter()
            .map(|(_, s, _)| state.service(&s.spec))
            .collect();
        let params = OpenLoopParams {
            fabric: &state.cfg.fabric,
            slots: state.cfg.max_tenants,
            shed: state.shed,
            faults: None,
            record_spans: false,
        };
        // The admission pre-pass records the queue-depth and shed-slack
        // histograms into a scratch recorder; only those histograms are
        // absorbed — the serve.* counters are re-added below per decision.
        let mut scratch = MemRecorder::new();
        let (_, outcomes) = run_open_loop(&params, &requests, &services, &mut scratch);
        state
            .rec
            .absorb_hist(names::HIST_SERVE_QUEUE_DEPTH, &scratch);
        state
            .rec
            .absorb_hist(names::HIST_SERVE_SHED_SLACK, &scratch);
        let mut kept = Vec::new();
        for ((c, sub, d), outcome) in merged.into_iter().zip(outcomes) {
            if matches!(outcome, RequestOutcome::Shed) {
                state.rec.add(names::SERVE_SHED, 1);
                batch_shed += 1;
                shed_events.push((sub.arrival_cycle, c, sub.spec.network.clone()));
                shed_lines[c].push(
                    mocha_json::jobj! {
                        "shed" => true,
                        "network" => sub.spec.network.as_str(),
                        "arrival_cycle" => sub.arrival_cycle,
                        "policy" => state.shed.name().as_str(),
                    }
                    .to_string_compact(),
                );
            } else {
                state.rec.add(names::SERVE_ADMITTED, 1);
                kept.push((c, sub, d));
            }
        }
        kept
    } else {
        merged
    };

    let subs: Vec<Submission> = kept.iter().map(|(_, s, _)| s.clone()).collect();
    let report = match state.cache.as_mut() {
        Some(cache) => runtime::run_with_cache(&state.cfg, &subs, cache, &mut state.rec),
        None => runtime::run_with(&state.cfg, &subs, &mut state.rec),
    };
    state.rec.add(names::SERVE_BATCHES, valid.len() as u64);
    if let Some(metrics) = state.metrics.as_mut() {
        metrics.absorb_batch(
            &shed_events,
            state.shed.reason(),
            &kept,
            state.slo,
            &report,
            &state.rec,
        );
    }

    let mut summary = summary_json(&report);
    if state.shed.active() {
        summary = summary.with("shed", batch_shed);
    }
    let summary = summary.to_string_compact();

    // `report.jobs` excludes failed jobs and is sorted by completion, so
    // ownership comes from the job id — the index of its submission.
    let mut out: Vec<String> = (0..batches.len()).map(|_| String::new()).collect();
    for &c in &valid {
        for line in &shed_lines[c] {
            out[c].push_str(line);
            out[c].push('\n');
        }
    }
    for job in &report.jobs {
        let owner = kept[job.id as usize].0;
        out[owner].push_str(&job.to_json().to_string_compact());
        out[owner].push('\n');
    }
    for c in valid {
        out[c].push_str(&summary);
        out[c].push('\n');
        results[c] = Some(Ok(std::mem::take(&mut out[c])));
    }
    results
        .into_iter()
        .map(|r| r.expect("every client resolved"))
        .collect()
}

/// The `stats` response: the recorder snapshot (counters, histogram
/// summaries, span tally) plus a derived `jobs` block whose counts
/// reconcile by construction. Without shedding,
/// `admitted == finished + failed + in_flight`; with a shed policy,
/// `admitted` counts every request past parsing and
/// `admitted == finished + failed + shed + in_flight`.
fn stats_json(rec: &MemRecorder, shed_active: bool) -> mocha_json::Value {
    let admitted = rec.counter(names::RUNTIME_JOBS_ADMITTED);
    let finished = rec.counter(names::RUNTIME_JOBS_FINISHED);
    let failed = rec.counter(names::RUNTIME_JOBS_FAILED);
    let shed = rec.counter(names::SERVE_SHED);
    let mut snap = rec.snapshot();
    if let mocha_json::Value::Obj(map) = &mut snap {
        let mut jobs = mocha_json::jobj! {
            "submitted" => rec.counter(names::RUNTIME_JOBS_SUBMITTED),
            "admitted" => if shed_active { admitted + shed } else { admitted },
            "finished" => finished,
            "retried" => rec.counter(names::RUNTIME_JOBS_RETRIED),
            "failed" => failed,
            "rejected" => rec.counter(names::SERVE_REQUESTS_REJECTED),
            "in_flight" => admitted - finished - failed,
        };
        if shed_active {
            jobs = jobs.with("shed", shed);
        }
        map.insert("jobs".to_string(), jobs);
    }
    snap
}

/// The fleet-level summary line (job list omitted — jobs were streamed
/// above).
fn summary_json(report: &RuntimeReport) -> mocha_json::Value {
    mocha_json::jobj! {
        "summary" => true,
        "policy" => report.policy.as_str(),
        "completed" => report.completed(),
        "horizon" => report.horizon,
        "jobs_per_mcycle" => report.jobs_per_mcycle(),
        "retried" => report.retried,
        "failed" => report.failed,
        "latency_p50" => report.latency_percentile(50.0),
        "latency_p95" => report.latency_percentile(95.0),
        "latency_p99" => report.latency_percentile(99.0),
        "mean_queue_wait" => report.mean_queue_wait(),
        "utilization" => report.utilization(),
        "gops" => report.gops(),
        "gops_per_watt" => report.gops_per_watt(),
    }
}

/// True when a batch is a `stats` snapshot query.
fn is_stats(lines: &[String]) -> bool {
    lines.first().map(|l| l.trim()) == Some("stats")
}

/// True when a batch is a `metrics` exposition query.
fn is_metrics(lines: &[String]) -> bool {
    lines.first().map(|l| l.trim()) == Some("metrics")
}

/// The reactor's early-completion predicate: query clients (`stats`,
/// `metrics`) keep their write side open, so the batch must complete
/// without a terminator.
fn is_query(lines: &[String]) -> bool {
    is_stats(lines) || is_metrics(lines)
}

/// The `metrics` response: the Prometheus-style text exposition followed
/// by one compact JSON snapshot line — or a one-line error when the
/// server was started without `--metrics-window`.
fn metrics_response(state: &mut ServeState) -> String {
    state.rec.add(names::SERVE_METRICS_REQUESTS, 1);
    match &state.metrics {
        None => format!(
            "{}\n",
            mocha_json::jobj! {
                "error" => "metrics disabled (run with --metrics-window)",
            }
            .to_string_compact()
        ),
        Some(sm) => format!(
            "{}{}\n",
            sm.m.exposition(),
            sm.m.snapshot_json().to_string_compact()
        ),
    }
}

/// Serves stdin/stdout batches until EOF: capped line reads until a
/// terminator close each batch (one runtime invocation per batch), and
/// bare `stats` / `metrics` lines at a batch boundary answer inline.
/// Protocol errors exit 2 with a one-line message. EOF mid-batch runs the
/// buffered lines, so a single unterminated batch still serves — the
/// original one-shot contract.
fn serve_stdin(state: &mut ServeState) -> i32 {
    let stdin = std::io::stdin();
    let mut reader = stdin.lock();
    let mut lines: Vec<String> = Vec::new();
    let mut served = 0usize;
    loop {
        let run_now = match read_line_capped(&mut reader, MAX_LINE_BYTES) {
            Ok(LineRead::Line(l)) => {
                if lines.is_empty() && l.trim() == "stats" {
                    state.rec.add(names::SERVE_STATS_REQUESTS, 1);
                    println!(
                        "{}",
                        stats_json(&state.rec, state.shed.active()).to_string_compact()
                    );
                    served += 1;
                    continue;
                }
                if lines.is_empty() && l.trim() == "metrics" {
                    print!("{}", metrics_response(state));
                    served += 1;
                    continue;
                }
                lines.push(l);
                continue;
            }
            Ok(LineRead::Terminator) => true,
            // An empty EOF after at least one served batch is a clean
            // shutdown; a bare EOF with no input at all still runs one
            // empty batch (the historical empty-input summary).
            Ok(LineRead::Eof) => !lines.is_empty() || served == 0,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        };
        if run_now {
            let result = run_batches(state, std::slice::from_ref(&lines))
                .pop()
                .expect("one batch in, one response out");
            lines.clear();
            served += 1;
            match result {
                Ok(resp) => print!("{resp}"),
                Err(e) => {
                    eprintln!("{e}");
                    return 2;
                }
            }
        } else {
            return 0;
        }
    }
}

/// Drives [`run_batches`] from the TCP reactor: stats queries answer from
/// the recorder, all job batches of a poll round share one runtime
/// invocation, and per-client failures come back as one-line JSON errors.
struct ServeHandler<'a> {
    state: &'a mut ServeState,
}

impl BatchHandler for ServeHandler<'_> {
    fn handle(&mut self, batches: &[ClientBatch]) -> Vec<String> {
        let mut responses: Vec<Option<String>> = (0..batches.len()).map(|_| None).collect();
        let mut jobs: Vec<Vec<String>> = Vec::new();
        let mut job_pos: Vec<usize> = Vec::new();
        for (i, b) in batches.iter().enumerate() {
            if !is_query(&b.lines) {
                jobs.push(b.lines.clone());
                job_pos.push(i);
            }
        }
        if !jobs.is_empty() {
            for (pos, result) in job_pos.into_iter().zip(run_batches(self.state, &jobs)) {
                responses[pos] = Some(match result {
                    Ok(r) => r,
                    Err(e) => format!(
                        "{}\n",
                        mocha_json::jobj! { "error" => e.as_str() }.to_string_compact()
                    ),
                });
            }
        }
        // Query batches answer after the round's job batches, so a
        // snapshot taken in the same round reflects them.
        let shed_active = self.state.shed.active();
        batches
            .iter()
            .zip(responses)
            .map(|(b, r)| match r {
                Some(r) => r,
                None if is_metrics(&b.lines) => metrics_response(self.state),
                None => {
                    self.state.rec.add(names::SERVE_STATS_REQUESTS, 1);
                    format!(
                        "{}\n",
                        stats_json(&self.state.rec, shed_active).to_string_compact()
                    )
                }
            })
            .collect()
    }

    fn protocol_error(&mut self, msg: &str) -> String {
        format!(
            "{}\n",
            mocha_json::jobj! { "error" => msg }.to_string_compact()
        )
    }
}

/// `serve` subcommand.
pub fn serve(args: &Args) -> i32 {
    if args.flag("open-loop") {
        return open_loop(args);
    }
    if let Err(code) = commands::strict(
        args,
        0,
        &[
            "policy",
            "max-tenants",
            "no-verify",
            "fabric",
            "tcp",
            "once",
            "threads",
            "faults",
            "shed-policy",
            "slo",
            "cache",
            "metrics-window",
        ],
    ) {
        return code;
    }
    let cfg = match config::runtime_config(args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let shed = match args.options.get("shed-policy") {
        None => ShedPolicy::None,
        Some(s) => match ShedPolicy::parse(s) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        },
    };
    let slo = args.options.get("slo").map(|_| args.opt_u64("slo", 0));
    // Live servers expose windows through the `metrics` query, not a file.
    let window = match args
        .options
        .get("metrics-window")
        .map(|w| WindowSpec::parse(w))
    {
        None => None,
        Some(Ok(w)) => Some(w),
        Some(Err(e)) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let mut state = ServeState::new(cfg, shed, slo, window);
    match args.options.get("tcp") {
        None => serve_stdin(&mut state),
        Some(addr) => {
            let listener = match std::net::TcpListener::bind(addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("cannot bind {addr:?}: {e}");
                    return 2;
                }
            };
            match listener.local_addr() {
                Ok(a) => eprintln!("listening on {a}"),
                Err(_) => eprintln!("listening on {addr}"),
            }
            let reactor_cfg = ReactorConfig {
                once: args.flag("once"),
                complete_early: Some(is_query),
                ..ReactorConfig::default()
            };
            let mut handler = ServeHandler { state: &mut state };
            match serve_reactor(listener, &reactor_cfg, &mut handler) {
                Ok(()) => 0,
                Err(e) => {
                    eprintln!("{e}");
                    2
                }
            }
        }
    }
}

/// Parses the paired offline metrics flags: `--metrics-window W` selects
/// the windowing and `--metrics FILE` the JSONL destination — both or
/// neither.
pub(crate) fn metrics_flags(args: &Args) -> Result<Option<(WindowSpec, String)>, String> {
    match (args.options.get("metrics-window"), args.options.get("metrics")) {
        (None, None) => Ok(None),
        (Some(_), None) => {
            Err("--metrics-window needs --metrics FILE for the windowed JSONL export".to_string())
        }
        (None, Some(_)) => {
            Err("--metrics FILE needs --metrics-window (WIDTH, tumbling:WIDTH, or rolling:WIDTH/STRIDE)"
                .to_string())
        }
        (Some(w), Some(path)) => {
            let spec = WindowSpec::parse(w)?;
            if path == "-" {
                return Err(
                    "--metrics writes a file; `-` is reserved for --obs (the report owns stdout)"
                        .to_string(),
                );
            }
            Ok(Some((spec, path.clone())))
        }
    }
}

/// `serve --open-loop`: the offline load-sweep mode behind experiment R3.
/// Generates (or replays) a heavy-tailed open-loop trace, calibrates
/// per-template service times, and runs the deterministic queueing
/// simulation with the chosen shed policy.
fn open_loop(args: &Args) -> i32 {
    // `serve --open-loop --fleet SPEC` is the fleet path: same trace and
    // calibration contract, sharded over N fabrics by `mocha::fleet`.
    if args.options.contains_key("fleet") || args.options.contains_key("route") {
        return crate::fleet_cmd::open_loop(args);
    }
    if let Err(code) = commands::strict(
        args,
        0,
        &[
            "open-loop",
            "requests",
            "tenants",
            "load",
            "seed",
            "mix",
            "slo",
            "shed-policy",
            "trace",
            "json",
            "obs",
            "fabric",
            "max-tenants",
            "threads",
            "faults",
            "cache",
            "metrics-window",
            "metrics",
        ],
    ) {
        return code;
    }
    let metrics = match metrics_flags(args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let fabric = match args.options.get("fabric") {
        None => mocha::fabric::FabricConfig::mocha_quad(),
        Some(_) => commands::load_fabric(args),
    };
    let slots = args.opt_u64("max-tenants", 4) as usize;
    if slots == 0 {
        eprintln!("--max-tenants must be at least 1");
        return 2;
    }
    let shed = match args.options.get("shed-policy") {
        None => ShedPolicy::None,
        Some(s) => match ShedPolicy::parse(s) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        },
    };
    let slo = args.options.get("slo").map(|_| args.opt_u64("slo", 0));
    let faults = match config::fault_plan(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let mix_name = args.opt("mix", "quick");
    let Some(mix) = Mix::parse(&mix_name) else {
        eprintln!("unknown mix {mix_name:?} (quick|full)");
        return 2;
    };
    let (label, mut requests) = match args.options.get("trace") {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path:?}: {e}");
                    return 2;
                }
            };
            match traffic::from_jsonl(&text) {
                Ok(r) => (format!("replay {path}"), r),
                Err(e) => {
                    eprintln!("{e}");
                    return 2;
                }
            }
        }
        None => {
            let load = args.opt_f64("load", 2.0);
            if load <= 0.0 {
                eprintln!("--load must be positive");
                return 2;
            }
            let tenants = args.opt_u64("tenants", 100) as usize;
            if tenants == 0 {
                eprintln!("--tenants must be at least 1");
                return 2;
            }
            let cfg = traffic::OpenLoopConfig {
                requests: args.opt_u64("requests", 2_000) as usize,
                tenants,
                load,
                seed: args.opt_u64("seed", 42),
                mix,
                slo,
            };
            (format!("load {load:.2}"), traffic::generate(&cfg))
        }
    };
    // `--slo` is the default deadline: replayed requests keep their own.
    if let Some(slo) = slo {
        for r in &mut requests {
            r.deadline.get_or_insert(slo);
        }
    }
    let specs: Vec<JobSpec> = requests.iter().map(|r| r.spec.clone()).collect();
    // `--cache`: calibration shares one decision cache across templates.
    // Measured cycles are byte-identical either way; only the controller
    // search work is saved.
    let cal = match if args.flag("cache") {
        let mut cache = DecisionCache::new();
        Calibration::measure_cached(&fabric, slots, &specs, Engine::configured(), &mut cache)
    } else {
        Calibration::measure(&fabric, slots, &specs, Engine::configured())
    } {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let services: Vec<u64> = requests.iter().map(|r| cal.service(&r.spec)).collect();
    let obs_path = args.options.get("obs").cloned();
    let params = OpenLoopParams {
        fabric: &fabric,
        slots,
        shed,
        faults: faults.as_ref(),
        record_spans: obs_path.is_some(),
    };
    let mut rec = MemRecorder::with_span_cap(SERVE_SPAN_CAP);
    let (report, outcomes) = run_open_loop(&params, &requests, &services, &mut rec);

    if let Some((spec, path)) = metrics {
        let m = windows_from_open_loop(spec, &requests, &outcomes, &report.fault_log, shed);
        // SLO alerts also land in the obs stream (counter + spans) so the
        // trace tooling sees them without parsing the metrics file.
        if m.slo.is_some() {
            m.record_alerts(&mut rec);
        }
        if let Err(e) = std::fs::write(&path, m.to_jsonl()) {
            eprintln!("cannot write {path:?}: {e}");
            return 2;
        }
    }

    use std::fmt::Write as _;
    let mut out = String::new();
    if args.flag("json") {
        let _ = writeln!(out, "{}", report.to_json().to_string_pretty());
    } else {
        let _ = writeln!(
            out,
            "open-loop ({label}): {} requests on {} slots, policy {}",
            report.offered, report.servers, report.policy,
        );
        let _ = writeln!(
            out,
            "  admitted {} | shed {} | completed {} | failed {} | in-SLO {} | misses {}",
            report.admitted,
            report.shed,
            report.completed,
            report.failed,
            report.in_slo,
            report.deadline_misses,
        );
        if faults.is_some() {
            let _ = writeln!(
                out,
                "  faults: {} injected | {} quarantined | {} cycles lost",
                report.faults_injected, report.quarantined, report.lost_cycles,
            );
        }
        let _ = writeln!(
            out,
            "  goodput {:.3} /Mcycle | p50 {} p95 {} p99 {} cycles | mean wait {:.0} | util {:.1} %",
            report.goodput_per_mcycle(),
            report.latency_percentile(50.0),
            report.latency_percentile(95.0),
            report.latency_percentile(99.0),
            report.mean_queue_wait,
            100.0 * report.utilization(),
        );
    }
    match obs_path.as_deref() {
        None => print!("{out}"),
        // `--obs -`: the event stream owns stdout; the report moves to
        // stderr (same contract as `runtime --obs -`).
        Some("-") => {
            print!("{}", rec.to_jsonl());
            eprint!("{out}");
        }
        Some(path) => {
            if let Err(e) = std::fs::write(path, rec.to_jsonl()) {
                eprintln!("cannot write {path:?}: {e}");
                return 2;
            }
            print!("{out}");
        }
    }
    0
}

/// `runtime` subcommand.
pub fn runtime_cmd(args: &Args) -> i32 {
    if let Err(code) = commands::strict(
        args,
        0,
        &[
            "jobs",
            "load",
            "seed",
            "policy",
            "max-tenants",
            "mix",
            "no-verify",
            "json",
            "fabric",
            "obs",
            "threads",
            "faults",
            "cache",
            "metrics-window",
            "metrics",
        ],
    ) {
        return code;
    }
    let metrics = match metrics_flags(args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let cfg = match config::runtime_config(args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let mix_name = args.opt("mix", "quick");
    let Some(mix) = Mix::parse(&mix_name) else {
        eprintln!("unknown mix {mix_name:?} (quick|full)");
        return 2;
    };
    let traffic = TrafficConfig {
        jobs: args.opt_u64("jobs", 8) as usize,
        load: args.opt_f64("load", 2.0),
        seed: args.opt_u64("seed", 42),
        mix,
    };
    if traffic.load <= 0.0 {
        eprintln!("--load must be positive");
        return 2;
    }
    let subs = runtime::generate(&traffic);
    // With `--obs` the run is recorded and the full event stream exported
    // as JSON lines. The stream is a pure function of the seeded run, so
    // identical invocations produce byte-identical output.
    let obs_path = args.options.get("obs").cloned();
    let mut rec = MemRecorder::new();
    let report = match &obs_path {
        None => runtime::run(&cfg, &subs),
        Some(_) => runtime::run_with(&cfg, &subs, &mut rec),
    };

    if let Some((spec, path)) = metrics {
        let m = windows_from_runtime(spec, &report);
        if let Err(e) = std::fs::write(&path, m.to_jsonl()) {
            eprintln!("cannot write {path:?}: {e}");
            return 2;
        }
    }

    use std::fmt::Write as _;
    let mut out = String::new();
    if args.flag("json") {
        let _ = writeln!(out, "{}", report.to_json().to_string_pretty());
    } else {
        let _ = writeln!(
            out,
            "{} jobs ({} mix, load {:.2}, seed {}) on {}x{} fabric, policy {}",
            traffic.jobs,
            mix.name(),
            traffic.load,
            traffic.seed,
            cfg.fabric.pe_rows,
            cfg.fabric.pe_cols,
            cfg.policy.name(),
        );
        let _ = writeln!(
            out,
            "  {:>3} {:<10} {:<8} {:>10} {:>10} {:>10} {:>10} {:>7} {:>8}",
            "job",
            "network",
            "priority",
            "arrival",
            "wait",
            "latency",
            "busy",
            "groups",
            "remorphs"
        );
        for j in &report.jobs {
            let _ = writeln!(
                out,
                "  {:>3} {:<10} {:<8} {:>10} {:>10} {:>10} {:>10} {:>7} {:>8}",
                j.id,
                j.spec.network,
                j.spec
                    .priority
                    .to_json()
                    .as_str()
                    .unwrap_or("?")
                    .to_string(),
                j.arrival,
                j.queue_wait(),
                j.latency(),
                j.busy_cycles,
                j.groups,
                j.remorphs,
            );
        }
        if cfg.faults.is_some() {
            let _ = writeln!(
                out,
                "faults: {} of {} jobs retried, {} failed ({} completed)",
                report.retried,
                traffic.jobs,
                report.failed,
                report.completed(),
            );
        }
        let _ = writeln!(
            out,
            "throughput {:.3} jobs/Mcycle | p50 {} p95 {} p99 {} cycles | util {:.1} % | {:.1} GOPS | {:.1} GOPS/W",
            report.jobs_per_mcycle(),
            report.latency_percentile(50.0),
            report.latency_percentile(95.0),
            report.latency_percentile(99.0),
            100.0 * report.utilization(),
            report.gops(),
            report.gops_per_watt(),
        );
    }

    match obs_path.as_deref() {
        None => print!("{out}"),
        // `--obs -`: the event stream owns stdout (clean for piping into
        // `mocha-sim trace`); the human report moves to stderr.
        Some("-") => {
            print!("{}", rec.to_jsonl());
            eprint!("{out}");
        }
        Some(path) => {
            if let Err(e) = std::fs::write(path, rec.to_jsonl()) {
                eprintln!("cannot write {path:?}: {e}");
                return 2;
            }
            print!("{out}");
        }
    }
    0
}
