//! The fleet front-end: `mocha-sim fleet` and the `serve --open-loop
//! --fleet` delegation target.
//!
//! `fleet` shards work across N simulated fabric instances of differing
//! geometry behind one deterministic router. The default (batch) mode is
//! the fleet twin of `runtime`: a seeded closed-loop trace routed over the
//! fleet and executed on each shard's cycle-accurate scheduler. With
//! `--open-loop` it becomes the fleet twin of `serve --open-loop` — the
//! engine behind experiment R5 — adding per-shard fault domains,
//! quarantine-triggered re-balancing, and template-warmth cold penalties.
//!
//! Both modes are byte-identical at any `--threads` and with the decision
//! cache on or off; `--fleet` / `--route` parse errors are one line on
//! stderr with exit code 2, the same contract as `--faults`.

use crate::args::Args;
use crate::commands;
use crate::config;
use mocha::engine::Engine;
use mocha::fleet::{
    run_fleet, run_fleet_open_loop, FleetConfig, FleetOpenLoopParams, FleetSpec, RouteKind,
};
use mocha::obs::{MemRecorder, NoopRecorder};
use mocha::runtime::{self, DecisionCache, JobSpec, LeasePolicy, Mix, TrafficConfig};
use mocha::serve::{traffic, windows_from_open_loop, Calibration, ShedPolicy};
use mocha_json::ToJson;

/// Parses `--fleet SPEC`, defaulting to a fleet of one quad fabric so
/// `fleet` without options is the exact off-switch for `runtime`.
fn fleet_spec(args: &Args) -> Result<FleetSpec, String> {
    match args.options.get("fleet") {
        None => Ok(FleetSpec::single(mocha::fabric::FabricConfig::mocha_quad())),
        Some(spec) => FleetSpec::parse(spec),
    }
}

/// Parses `--route POLICY` (default round-robin — the stateless baseline).
fn route_kind(args: &Args) -> Result<RouteKind, String> {
    match args.options.get("route") {
        None => Ok(RouteKind::RoundRobin),
        Some(s) => RouteKind::parse(s),
    }
}

/// `fleet` subcommand.
pub fn fleet(args: &Args) -> i32 {
    if args.flag("open-loop") {
        return open_loop(args);
    }
    if let Err(code) = commands::strict(
        args,
        0,
        &[
            "fleet",
            "route",
            "route-seed",
            "jobs",
            "load",
            "seed",
            "mix",
            "policy",
            "max-tenants",
            "no-verify",
            "json",
            "obs",
            "threads",
            "faults",
            "cache",
        ],
    ) {
        return code;
    }
    let fleet = match fleet_spec(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let route = match route_kind(args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let policy_name = args.opt("policy", "adaptive");
    let Some(policy) = LeasePolicy::parse(&policy_name) else {
        eprintln!("unknown policy {policy_name:?} (adaptive|static)");
        return 2;
    };
    let max_tenants = args.opt_u64("max-tenants", 4) as usize;
    if max_tenants == 0 {
        eprintln!("--max-tenants must be at least 1");
        return 2;
    }
    let faults = match config::fault_plan(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let mix_name = args.opt("mix", "quick");
    let Some(mix) = Mix::parse(&mix_name) else {
        eprintln!("unknown mix {mix_name:?} (quick|full)");
        return 2;
    };
    let traffic = TrafficConfig {
        jobs: args.opt_u64("jobs", 8) as usize,
        load: args.opt_f64("load", 2.0),
        seed: args.opt_u64("seed", 42),
        mix,
    };
    if traffic.load <= 0.0 {
        eprintln!("--load must be positive");
        return 2;
    }
    let cfg = FleetConfig {
        fleet,
        route,
        route_seed: args.opt_u64("route-seed", 42),
        policy,
        max_tenants,
        verify: !args.flag("no-verify"),
        threads: 0,
        faults,
        cache: args.flag("cache"),
    };
    let subs = runtime::generate(&traffic);
    let obs_path = args.options.get("obs").cloned();
    let mut rec = MemRecorder::new();
    let report = match &obs_path {
        None => run_fleet(&cfg, &subs, &mut NoopRecorder),
        Some(_) => run_fleet(&cfg, &subs, &mut rec),
    };

    use std::fmt::Write as _;
    let mut out = String::new();
    if args.flag("json") {
        let _ = writeln!(out, "{}", report.to_json().to_string_pretty());
    } else {
        let _ = writeln!(
            out,
            "{} jobs ({} mix, load {:.2}, seed {}) over {} shard(s), route {}",
            traffic.jobs,
            mix.name(),
            traffic.load,
            traffic.seed,
            report.shards.len(),
            report.route,
        );
        let _ = writeln!(
            out,
            "  {:>5} {:<12} {:>7} {:>10} {:>7} {:>8} {:>12}",
            "shard", "fabric", "routed", "completed", "failed", "retried", "horizon"
        );
        for s in &report.shards {
            let _ = writeln!(
                out,
                "  {:>5} {:<12} {:>7} {:>10} {:>7} {:>8} {:>12}",
                s.shard,
                s.label,
                s.routed,
                s.report.completed(),
                s.report.failed,
                s.report.retried,
                s.report.horizon,
            );
        }
        let _ = writeln!(
            out,
            "fleet: {} completed | {} failed | {} retried | horizon {} cycles",
            report.completed(),
            report.failed(),
            report.retried(),
            report.horizon(),
        );
        let _ = writeln!(
            out,
            "  p50 {} p95 {} p99 {} cycles | mean wait {:.0}",
            report.latency_percentile(50.0),
            report.latency_percentile(95.0),
            report.latency_percentile(99.0),
            report.mean_queue_wait(),
        );
    }

    match obs_path.as_deref() {
        None => print!("{out}"),
        // `--obs -`: the event stream owns stdout; the report moves to
        // stderr (same contract as `runtime --obs -`).
        Some("-") => {
            print!("{}", rec.to_jsonl());
            eprint!("{out}");
        }
        Some(path) => {
            if let Err(e) = std::fs::write(path, rec.to_jsonl()) {
                eprintln!("cannot write {path:?}: {e}");
                return 2;
            }
            print!("{out}");
        }
    }
    0
}

/// `fleet --open-loop` (also reached from `serve --open-loop --fleet`):
/// the fleet open-loop queueing simulation behind experiment R5.
pub fn open_loop(args: &Args) -> i32 {
    if let Err(code) = commands::strict(
        args,
        0,
        &[
            "open-loop",
            "fleet",
            "route",
            "route-seed",
            "cold-penalty",
            "requests",
            "tenants",
            "load",
            "seed",
            "mix",
            "slo",
            "shed-policy",
            "trace",
            "json",
            "obs",
            "max-tenants",
            "threads",
            "faults",
            "cache",
            "metrics-window",
            "metrics",
        ],
    ) {
        return code;
    }
    let metrics = match crate::serve::metrics_flags(args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let fleet = match fleet_spec(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let route = match route_kind(args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let slots = args.opt_u64("max-tenants", 4) as usize;
    if slots == 0 {
        eprintln!("--max-tenants must be at least 1");
        return 2;
    }
    let shed = match args.options.get("shed-policy") {
        None => ShedPolicy::None,
        Some(s) => match ShedPolicy::parse(s) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        },
    };
    let slo = args.options.get("slo").map(|_| args.opt_u64("slo", 0));
    let faults = match config::fault_plan(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let mix_name = args.opt("mix", "quick");
    let Some(mix) = Mix::parse(&mix_name) else {
        eprintln!("unknown mix {mix_name:?} (quick|full)");
        return 2;
    };
    let (label, mut requests) = match args.options.get("trace") {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path:?}: {e}");
                    return 2;
                }
            };
            match traffic::from_jsonl(&text) {
                Ok(r) => (format!("replay {path}"), r),
                Err(e) => {
                    eprintln!("{e}");
                    return 2;
                }
            }
        }
        None => {
            let load = args.opt_f64("load", 2.0);
            if load <= 0.0 {
                eprintln!("--load must be positive");
                return 2;
            }
            let tenants = args.opt_u64("tenants", 100) as usize;
            if tenants == 0 {
                eprintln!("--tenants must be at least 1");
                return 2;
            }
            let cfg = traffic::OpenLoopConfig {
                requests: args.opt_u64("requests", 2_000) as usize,
                tenants,
                load,
                seed: args.opt_u64("seed", 42),
                mix,
                slo,
            };
            (format!("load {load:.2}"), traffic::generate(&cfg))
        }
    };
    // `--slo` is the default deadline: replayed requests keep their own.
    if let Some(slo) = slo {
        for r in &mut requests {
            r.deadline.get_or_insert(slo);
        }
    }
    let specs: Vec<JobSpec> = requests.iter().map(|r| r.spec.clone()).collect();
    // Calibrate once per distinct shard geometry, not per shard. With
    // `--cache` one decision cache is shared across the geometries; the
    // measured cycles are byte-identical either way (only controller
    // search work is saved), so fleet output stays cache-invariant.
    let mut cache = args.flag("cache").then(DecisionCache::new);
    let mut cals: Vec<(mocha::fabric::FabricConfig, Calibration)> = Vec::new();
    for shard in fleet.shards() {
        if cals.iter().any(|(f, _)| *f == shard.fabric) {
            continue;
        }
        let cal = match cache.as_mut() {
            Some(c) => {
                Calibration::measure_cached(&shard.fabric, slots, &specs, Engine::configured(), c)
            }
            None => Calibration::measure(&shard.fabric, slots, &specs, Engine::configured()),
        };
        match cal {
            Ok(c) => cals.push((shard.fabric, c)),
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        }
    }
    let services: Vec<Vec<u64>> = fleet
        .shards()
        .iter()
        .map(|sh| {
            let cal = &cals
                .iter()
                .find(|(f, _)| *f == sh.fabric)
                .expect("calibrated above")
                .1;
            requests.iter().map(|r| cal.service(&r.spec)).collect()
        })
        .collect();
    let obs_path = args.options.get("obs").cloned();
    let params = FleetOpenLoopParams {
        fleet: &fleet,
        slots,
        shed,
        route,
        route_seed: args.opt_u64("route-seed", 42),
        faults: faults.as_ref(),
        cold_penalty: args.opt_u64("cold-penalty", 0),
        record_spans: obs_path.is_some(),
    };
    let mut rec = MemRecorder::new();
    let (report, outcomes) = run_fleet_open_loop(&params, &requests, &services, &mut rec);

    if let Some((spec, path)) = metrics {
        let m = windows_from_open_loop(spec, &requests, &outcomes, &report.fault_log, shed);
        if m.slo.is_some() {
            m.record_alerts(&mut rec);
        }
        if let Err(e) = std::fs::write(&path, m.to_jsonl()) {
            eprintln!("cannot write {path:?}: {e}");
            return 2;
        }
    }

    use std::fmt::Write as _;
    let mut out = String::new();
    if args.flag("json") {
        let _ = writeln!(out, "{}", report.to_json().to_string_pretty());
    } else {
        let _ = writeln!(
            out,
            "fleet open-loop ({label}): {} requests over {} shard(s), route {}, policy {}",
            report.offered,
            report.shards.len(),
            report.route,
            report.policy,
        );
        let _ = writeln!(
            out,
            "  admitted {} | shed {} | completed {} | failed {} | in-SLO {} | misses {}",
            report.admitted,
            report.shed,
            report.completed,
            report.failed,
            report.in_slo,
            report.deadline_misses,
        );
        let _ = writeln!(
            out,
            "  routing: {} rebalanced | {} cold | {} warm",
            report.rebalanced, report.cold_misses, report.warm_hits,
        );
        if faults.is_some() {
            let _ = writeln!(
                out,
                "  faults: {} injected | {} quarantined | {} cycles lost",
                report.faults_injected, report.quarantined, report.lost_cycles,
            );
        }
        let _ = writeln!(
            out,
            "  goodput {:.3} /Mcycle | p50 {} p95 {} p99 {} cycles | mean wait {:.0} | util {:.1} %",
            report.goodput_per_mcycle(),
            report.latency_percentile(50.0),
            report.latency_percentile(95.0),
            report.latency_percentile(99.0),
            report.mean_queue_wait,
            100.0 * report.utilization(),
        );
        let _ = writeln!(
            out,
            "  {:>5} {:<12} {:>7} {:>7} {:>5} {:>9} {:>7} {:>7} {:>7} {:>10}",
            "shard",
            "fabric",
            "servers",
            "routed",
            "shed",
            "completed",
            "failed",
            "reb-in",
            "reb-out",
            "p99"
        );
        for (i, s) in report.shards.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {:>5} {:<12} {:>7} {:>7} {:>5} {:>9} {:>7} {:>7} {:>7} {:>10}",
                i,
                s.label,
                s.servers,
                s.routed,
                s.shed,
                s.completed,
                s.failed,
                s.rebalanced_in,
                s.rebalanced_out,
                s.latency_percentile(99.0),
            );
        }
    }
    match obs_path.as_deref() {
        None => print!("{out}"),
        // `--obs -`: the event stream owns stdout; the report moves to
        // stderr (same contract as `serve --open-loop --obs -`).
        Some("-") => {
            print!("{}", rec.to_jsonl());
            eprint!("{out}");
        }
        Some(path) => {
            if let Err(e) = std::fs::write(path, rec.to_jsonl()) {
                eprintln!("cannot write {path:?}: {e}");
                return 2;
            }
            print!("{out}");
        }
    }
    0
}
