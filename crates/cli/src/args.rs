//! Tiny dependency-free argument parsing for `mocha-sim`: positional
//! subcommand + `--key value` / `--flag` options. Deliberately minimal —
//! the CLI surface is small and stable, and a hand-rolled parser keeps the
//! offline dependency set to the workspace-approved crates.

use std::collections::BTreeMap;

/// Parsed command line: subcommand, positionals, and `--key [value]` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first positional), if any.
    pub command: Option<String>,
    /// Remaining positional arguments.
    pub positional: Vec<String>,
    /// Options; a flag without a value maps to an empty string.
    pub options: BTreeMap<String, String>,
}

impl Args {
    /// Parses an iterator of argument strings (excluding `argv[0]`).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().unwrap(),
                    _ => String::new(),
                };
                out.options.insert(key.to_string(), value);
            } else if out.command.is_none() {
                out.command = Some(arg);
            } else {
                out.positional.push(arg);
            }
        }
        out
    }

    /// Option value with a default.
    pub fn opt(&self, key: &str, default: &str) -> String {
        self.options
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Numeric option with a default; exits with a message on a bad value.
    pub fn opt_u64(&self, key: &str, default: u64) -> u64 {
        match self.options.get(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("--{key} expects an integer, got {v:?}");
                std::process::exit(2);
            }),
        }
    }

    /// Float option with a default; exits with a message on a bad value.
    pub fn opt_f64(&self, key: &str, default: f64) -> f64 {
        match self.options.get(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("--{key} expects a number, got {v:?}");
                std::process::exit(2);
            }),
        }
    }

    /// True when the flag is present (with or without a value).
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn subcommand_and_positionals() {
        let a = parse("simulate alexnet extra");
        assert_eq!(a.command.as_deref(), Some("simulate"));
        assert_eq!(a.positional, vec!["alexnet", "extra"]);
    }

    #[test]
    fn options_with_values_and_flags() {
        let a = parse("simulate alexnet --seed 7 --trace --profile sparse");
        assert_eq!(a.opt_u64("seed", 0), 7);
        assert!(a.flag("trace"));
        assert_eq!(a.opt("profile", "nominal"), "sparse");
        assert_eq!(a.opt("missing", "dflt"), "dflt");
    }

    #[test]
    fn flag_followed_by_option_is_not_swallowed() {
        let a = parse("x --verify --seed 3");
        assert!(a.flag("verify"));
        assert_eq!(a.opt("verify", "?"), "");
        assert_eq!(a.opt_u64("seed", 0), 3);
    }

    #[test]
    fn empty_args() {
        let a = parse("");
        assert!(a.command.is_none());
        assert!(a.positional.is_empty());
    }

    #[test]
    fn float_options() {
        let a = parse("codec --sparsity 0.7");
        assert!((a.opt_f64("sparsity", 0.0) - 0.7).abs() < 1e-12);
    }
}
