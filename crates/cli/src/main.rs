//! `mocha-sim` — command-line interface to the MOCHA accelerator simulator.
//!
//! ```text
//! mocha-sim simulate <network> [--accelerator A] [--objective O] [--profile P]
//!                              [--seed N] [--trace] [--json] [--no-verify]
//! mocha-sim decide   <network> [--layer NAME] [--profile P]
//! mocha-sim area     [--grid N] [--spm-kb KB]
//! mocha-sim codec    [--sparsity S] [--clustered] [--elements N] [--seed N]
//! mocha-sim networks
//! ```

mod args;
mod commands;

use args::Args;

fn main() {
    let parsed = Args::parse(std::env::args().skip(1));
    let code = match parsed.command.as_deref() {
        Some("simulate") => commands::simulate(&parsed),
        Some("decide") => commands::decide(&parsed),
        Some("area") => commands::area(&parsed),
        Some("codec") => commands::codec(&parsed),
        Some("pareto") => commands::pareto(&parsed),
        Some("networks") => commands::networks(),
        Some("help") | None => {
            print!("{}", commands::USAGE);
            0
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n\n{}", commands::USAGE);
            2
        }
    };
    std::process::exit(code);
}
