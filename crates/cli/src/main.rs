//! `mocha-sim` — command-line interface to the MOCHA accelerator simulator.
//!
//! ```text
//! mocha-sim simulate <network> [--accelerator A] [--objective O] [--profile P]
//!                              [--seed N] [--trace] [--json] [--no-verify]
//!                              [--threads N]
//! mocha-sim decide   <network> [--layer NAME] [--profile P]
//! mocha-sim area     [--grid N] [--spm-kb KB]
//! mocha-sim codec    [--sparsity S] [--clustered] [--elements N] [--seed N]
//! mocha-sim networks
//! mocha-sim repro    [ids...] [--quick] [--threads N]
//! mocha-sim runtime  [--jobs N] [--load F] [--seed N] [--mix M] [--policy P]
//!                    [--obs FILE|-] [--threads N]
//!                    [--metrics-window W --metrics FILE]
//! mocha-sim fleet    [--fleet SPEC] [--route POLICY] [--route-seed N]
//!                    [--jobs N] [--load F] [--seed N] [--mix M] [--faults SPEC]
//!                    [--obs FILE|-] [--json] [--threads N]
//! mocha-sim fleet    --open-loop [--fleet SPEC] [--route POLICY]
//!                    [--cold-penalty N] [--requests N] [--load F] [--seed N]
//!                    [--slo CYCLES] [--shed-policy P] [--faults SPEC]
//!                    [--trace FILE] [--json] [--obs FILE|-]
//!                    [--metrics-window W --metrics FILE]
//! mocha-sim trace    summary <FILE|-> | export <FILE|-> --chrome OUT
//!                    | diff <A> <B> [--fail-on-regression PCT]
//! mocha-sim serve    [--tcp ADDR] [--once] [--policy P] [--max-tenants N]
//!                    [--shed-policy none|queue=N|deadline] [--slo CYCLES]
//!                    [--metrics-window W]
//!                    (a batch starting with the bare line `stats` returns a
//!                    counters/histograms snapshot; `metrics` returns the
//!                    windowed exposition + JSON snapshot)
//! mocha-sim serve    --open-loop [--requests N] [--tenants N] [--load F]
//!                    [--seed N] [--slo CYCLES] [--shed-policy P]
//!                    [--trace FILE] [--json] [--obs FILE|-]
//!                    [--metrics-window W --metrics FILE]
//! ```
//!
//! Errors are scriptable: unknown subcommands, options or stray arguments
//! produce a one-line message on stderr and exit code 2.

mod args;
mod commands;
mod config;
mod fleet_cmd;
mod serve;
mod trace_cmd;

use args::Args;

fn main() {
    let parsed = Args::parse(std::env::args().skip(1));
    // `--threads N` sets the process-default engine width before dispatch,
    // so every parallel stage (controller search, DSE scoring, job
    // stepping, repro sweeps) fans out over N workers. Absent = all cores;
    // 1 = the fully sequential legacy path. Output is byte-identical
    // either way — the flag only trades wall-clock time.
    if let Some(t) = parsed.options.get("threads") {
        match t.parse::<usize>() {
            Ok(n) if n >= 1 => mocha::engine::set_default_threads(n),
            _ => {
                eprintln!("--threads must be a positive integer");
                std::process::exit(2);
            }
        }
    }
    let code = match parsed.command.as_deref() {
        Some("simulate") => commands::simulate(&parsed),
        Some("decide") => commands::decide(&parsed),
        Some("area") => commands::area(&parsed),
        Some("codec") => commands::codec(&parsed),
        Some("pareto") => commands::pareto(&parsed),
        Some("networks") => commands::networks(&parsed),
        Some("repro") => commands::repro(&parsed),
        Some("runtime") => serve::runtime_cmd(&parsed),
        Some("fleet") => fleet_cmd::fleet(&parsed),
        Some("trace") => trace_cmd::trace(&parsed),
        Some("serve") => serve::serve(&parsed),
        Some("help") => {
            print!("{}", commands::USAGE);
            0
        }
        None => {
            eprint!("{}", commands::USAGE);
            2
        }
        Some(other) => {
            eprintln!("unknown command {other:?} (see `mocha-sim help`)");
            2
        }
    };
    std::process::exit(code);
}
