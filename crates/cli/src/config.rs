//! Shared option plumbing for the runtime-backed subcommands (`serve`,
//! `runtime`, and `simulate`'s fault replay) — one builder instead of three
//! diverging copies.

use crate::args::Args;
use crate::commands;
use mocha::fault::FaultPlan;
use mocha::runtime::{LeasePolicy, RuntimeConfig};

/// Parses `--faults SPEC` into a plan, `Ok(None)` when the option is
/// absent.
pub fn fault_plan(args: &Args) -> Result<Option<FaultPlan>, String> {
    match args.options.get("faults") {
        None => Ok(None),
        Some(spec) => FaultPlan::parse(spec).map(Some),
    }
}

/// Builds the runtime configuration shared by `serve` and `runtime` from
/// `--fabric`, `--policy`, `--max-tenants`, `--no-verify`, `--faults` and
/// `--cache`.
///
/// The returned config always carries `threads: 0`. That is deliberate,
/// not a missing feature: `--threads N` is folded into the process-wide
/// engine default exactly once by `main` *before* command dispatch, and a
/// `threads` of 0 here defers to that default (all cores when the flag was
/// never given). Resolving the flag again in this builder would apply it
/// twice.
pub fn runtime_config(args: &Args) -> Result<RuntimeConfig, String> {
    let fabric = match args.options.get("fabric") {
        None => mocha::fabric::FabricConfig::mocha_quad(),
        Some(_) => commands::load_fabric(args),
    };
    let policy_name = args.opt("policy", "adaptive");
    let policy = LeasePolicy::parse(&policy_name)
        .ok_or_else(|| format!("unknown policy {policy_name:?} (adaptive|static)"))?;
    let max_tenants = args.opt_u64("max-tenants", 4) as usize;
    if max_tenants == 0 {
        return Err("--max-tenants must be at least 1".into());
    }
    Ok(RuntimeConfig {
        fabric,
        policy,
        max_tenants,
        verify: !args.flag("no-verify"),
        threads: 0,
        faults: fault_plan(args)?,
        cache: args.flag("cache"),
    })
}
