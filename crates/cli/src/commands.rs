//! `mocha-sim` subcommand implementations.

use crate::args::Args;
use mocha::core::controller;
use mocha::core::trace::Trace;
use mocha::model::gen;
use mocha::prelude::*;

/// Usage text shown by `help`.
pub const USAGE: &str = "\
mocha-sim — MOCHA CNN-accelerator simulator

USAGE:
  mocha-sim simulate <network> [options]   run a network end-to-end
      --accelerator  mocha|mocha-nc|tiling|fusion|parallel   (default mocha)
      --objective    edp|throughput|energy|storage           (default edp)
      --profile      dense|nominal|sparse                    (default nominal)
      --seed N       workload seed                           (default 42)
      --trace        print a per-group pipeline Gantt chart
      --json         emit metrics as JSON
      --no-verify    skip golden-model verification
      --obs FILE|-   export the observability event stream as JSON lines
                     (`-` streams to stdout and moves the report to stderr)
      --threads N    engine worker threads (default: all cores; 1 = sequential;
                     output is byte-identical for every value)
      --faults SPEC  deterministic fault injection (see below); single-tenant
                     replay: every fault retries the hit group
  mocha-sim decide <network> [--layer NAME] [--profile P]
                                           show the controller's decision
  mocha-sim area [--grid N] [--spm-kb KB]  silicon area breakdown
  mocha-sim codec [--sparsity S] [--clustered] [--elements N] [--seed N]
                                           codec ratios on synthetic data
  mocha-sim pareto <network> [--layer NAME] [--profile P]
                                           Pareto front (cycles/energy/storage)
  mocha-sim networks                       list the network zoo
  mocha-sim repro [ids...] [--quick] [--threads N] [--cache]
                                           regenerate the paper's tables and
                                           figures (t1 t2 f1..f8 a1..a3 r1 r2
                                           r3 r4 r5; default/`all` = every
                                           experiment; r2 sweeps fault rates
                                           and compares quarantine-and-remorph
                                           recovery against a fail-stop
                                           baseline; r3 sweeps open-loop
                                           offered load and compares SLO-aware
                                           shedding against unbounded queueing;
                                           r5 sweeps per-shard fault rates over
                                           a heterogeneous fleet and compares
                                           the three routing policies)
  mocha-sim runtime [options]              multi-tenant runtime on synthetic traffic
      --jobs N           jobs to generate                     (default 8)
      --load F           offered load, arrivals per service   (default 2.0)
      --seed N           traffic seed                         (default 42)
      --mix quick|full   tenant mix (full = AlexNet/VGG: slow)(default quick)
      --policy adaptive|static   lease policy                 (default adaptive)
      --max-tenants N    admission cap                        (default 4)
      --json             emit the RuntimeReport as JSON
      --no-verify        skip golden-model verification
      --obs FILE|-       export the run's observability event stream
                         (spans, counters, histograms) as JSON lines;
                         `-` streams to stdout, report moves to stderr
      --threads N        engine worker threads (default: all cores)
      --faults SPEC      inject faults; permanent faults quarantine fabric
                         regions and jobs re-morph around them (or fail-stop
                         with mode=failstop)
      --cache            share a morph-decision cache across jobs: repeated
                         controller searches are memoized; reports and
                         streams stay byte-identical (only cache.* counters
                         are added)
      --metrics-window W  window the run's telemetry: W cycles tumbling
                         (or tumbling:W, rolling:WIDTH/STRIDE); needs
                         --metrics FILE
      --metrics FILE     write per-window counters and histogram summaries
                         as JSON lines (byte-identical at any --threads)
  mocha-sim fleet [options]                deterministic fleet router: shard a
                                           seeded closed-loop trace across N
                                           simulated fabric instances and run
                                           each shard's cycle-accurate
                                           scheduler (the fleet twin of
                                           `runtime`; a fleet of one is
                                           byte-identical to `runtime` modulo
                                           fleet.* telemetry)
      --fleet SPEC       `/`-separated instances of comma `key=value` pairs:
                         preset=mocha|quad|baseline, grid=N (square PE grid),
                         banks=N, kb=N (per SPM bank), lanes=N, dma=N,
                         codecs=N, count=N (replicas); e.g.
                         `preset=quad/grid=8,banks=16,count=2`
                         (default: one quad fabric; max 64 shards)
      --route POLICY     round-robin (rr) | locality | p2c (power-of-two)
                                                            (default round-robin)
      --route-seed N     seed for stochastic policies (p2c) (default 42)
      --jobs/--load/--seed/--mix/--policy/--max-tenants/--no-verify/--json/
      --obs/--threads/--faults/--cache    as for `runtime`; every shard runs
                         an independent fault domain (the plan's seed is
                         stepped per shard) and `--cache` shares one
                         morph-decision cache across shards
  mocha-sim fleet --open-loop [options]    fleet open-loop queueing sweep
                                           (experiment R5's engine; also
                                           reachable as `serve --open-loop
                                           --fleet SPEC`): routes R3's
                                           open-loop arrival traces across
                                           the fleet, with per-shard fault
                                           domains, quarantine-triggered live
                                           re-balancing of queued jobs onto
                                           healthy shards, and template-warmth
                                           cold penalties
      --fleet/--route/--route-seed        as above
      --cold-penalty N   extra service cycles the first job of a template
                         pays on a shard that has never seen it (models the
                         shard's cold decision cache)      (default 0)
      --requests/--tenants/--load/--seed/--mix/--slo/--shed-policy/--trace/
      --json/--obs/--max-tenants/--threads/--faults/--cache/
      --metrics-window/--metrics          as for `serve --open-loop`
  mocha-sim trace summary <FILE|-> [--json] [--energy FILE]
                                           profile an obs stream: span tree,
                                           critical paths, overlap, exact
                                           phase/energy attribution
                                           (--json emits the profile, usable
                                           as a `trace diff` baseline)
  mocha-sim trace export <FILE|-> --chrome OUT
                                           write Chrome trace-event JSON
                                           (load in chrome://tracing or
                                           https://ui.perfetto.dev)
  mocha-sim trace diff <A> <B> [--fail-on-regression PCT] [--energy FILE]
                                           compare two runs' profiles
                                           (A/B: stream or saved profile);
                                           exits 1 when a higher-is-worse
                                           metric regressed beyond PCT
  mocha-sim serve [--tcp ADDR] [--once] [--policy P] [--max-tenants N] [--no-verify]
                  [--threads N] [--faults SPEC] [--cache]
                  [--shed-policy none|queue=N|deadline] [--slo CYCLES]
                  [--metrics-window W]
      JSON-lines batch server: one job request per line on stdin (or over
      TCP with --tcp, where a poll-style reactor multiplexes concurrent
      clients and merges their batches into one runtime invocation), e.g.
        {\"network\": \"lenet5\", \"profile\": \"sparse\", \"priority\": \"high\",
         \"objective\": \"edp\", \"seed\": 7, \"arrival_cycle\": 0,
         \"deadline_cycles\": 500000}
      A blank (or whitespace/CRLF-only) line or EOF closes the batch;
      request lines are capped at 64 KiB. Per-job reports and a summary
      come back as JSON lines. A batch whose first line is the bare word
      `stats` instead returns one JSON snapshot of the server's counters
      and histograms (admitted == finished + failed + in_flight — plus
      shed, under a shed policy — by construction).
      --shed-policy deadline drops requests whose predicted completion
      (from calibrated per-template service times) would miss their
      deadline, answering with a one-line `shed` JSON object instead of
      queueing them; queue=N bounds the number of queued-but-unstarted
      requests. --slo CYCLES is the default deadline for requests without
      their own deadline_cycles. --cache keeps a morph-decision cache for
      the life of the server, so later batches skip controller searches
      earlier ones already did (`stats` exposes cache.hit/cache.miss).
      With --metrics-window W, a batch whose first line is the bare word
      `metrics` returns a Prometheus-style text exposition of the server's
      windowed counters, histogram quantiles, and SLO burn rates, followed
      by one JSON snapshot line.
  mocha-sim serve --open-loop [--requests N] [--tenants N] [--load F] [--seed N]
                  [--mix quick|full] [--slo CYCLES] [--shed-policy P]
                  [--trace FILE] [--json] [--obs FILE|-] [--faults SPEC]
                  [--max-tenants N] [--metrics-window W --metrics FILE]
      Offline open-loop load sweep (experiment R3's engine): generates a
      seeded heavy-tailed trace (or replays --trace FILE, JSON lines in
      the request format above) through the calibrated queueing model and
      prints goodput/latency aggregates. Deterministic at any --threads.

Fabric and energy tables can be overridden from JSON for any command:
  --fabric FILE.json     a serialized FabricConfig
  --energy FILE.json     a serialized EnergyTable

Fault injection (simulate, runtime, serve) takes a seeded, fully
deterministic specification — same spec, same seed, same schedule at any
--threads value:
  --faults rate=R[,seed=N][,mode=quarantine|failstop][,transient=F][,retries=N]
      rate       faults per million cycles (mandatory; 0 disables)
      seed       fault schedule seed                       (default 1)
      mode       permanent-fault recovery policy           (default quarantine)
      transient  fraction of faults that are transient     (default 0.5)
      retries    per-job retry budget before it fails      (default 8)

Search-heavy commands (simulate, decide, pareto, runtime, serve) accept
  --threads N            deterministic engine worker threads; results are
                         byte-identical across values (default: all cores)
";

/// Rejects options the subcommand doesn't know and positionals beyond the
/// expected count, with a one-line scriptable error on stderr.
pub fn strict(args: &Args, positionals: usize, allowed: &[&str]) -> Result<(), i32> {
    let cmd = args.command.as_deref().unwrap_or("");
    for key in args.options.keys() {
        if !allowed.contains(&key.as_str()) {
            eprintln!("unknown option --{key} for `mocha-sim {cmd}` (see `mocha-sim help`)");
            return Err(2);
        }
    }
    if args.positional.len() > positionals {
        eprintln!(
            "unexpected argument {:?} for `mocha-sim {cmd}` (see `mocha-sim help`)",
            args.positional[positionals]
        );
        return Err(2);
    }
    Ok(())
}

fn profile(name: &str) -> SparsityProfile {
    match name {
        "dense" => SparsityProfile::DENSE,
        "nominal" => SparsityProfile::NOMINAL,
        "sparse" => SparsityProfile::SPARSE,
        other => {
            eprintln!("unknown profile {other:?} (dense|nominal|sparse)");
            std::process::exit(2);
        }
    }
}

fn objective(name: &str) -> Objective {
    match name {
        "edp" => Objective::Edp,
        "throughput" => Objective::Throughput,
        "energy" => Objective::Energy,
        "storage" => Objective::Storage,
        other => {
            eprintln!("unknown objective {other:?} (edp|throughput|energy|storage)");
            std::process::exit(2);
        }
    }
}

fn accelerator(name: &str, obj: Objective) -> Accelerator {
    match name {
        "mocha" => Accelerator::mocha(obj),
        "mocha-nc" => Accelerator::mocha_no_compression(obj),
        "tiling" => Accelerator::tiling_only(),
        "fusion" => Accelerator::fusion_only(),
        "parallel" => Accelerator::parallelism_only(),
        other => {
            eprintln!("unknown accelerator {other:?} (mocha|mocha-nc|tiling|fusion|parallel)");
            std::process::exit(2);
        }
    }
}

/// Loads the fabric, honouring `--fabric FILE.json`.
pub(crate) fn load_fabric(args: &Args) -> FabricConfig {
    match args.options.get("fabric") {
        None => FabricConfig::mocha(),
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read fabric config {path:?}: {e}");
                std::process::exit(2);
            });
            let fabric: FabricConfig = mocha_json::parse(&text)
                .and_then(|v| mocha_json::FromJson::from_json(&v))
                .unwrap_or_else(|e| {
                    eprintln!("invalid fabric config {path:?}: {e}");
                    std::process::exit(2);
                });
            if let Err(e) = fabric.validate() {
                eprintln!("inconsistent fabric config {path:?}: {e}");
                std::process::exit(2);
            }
            fabric
        }
    }
}

/// Loads the energy table, honouring `--energy FILE.json`.
pub(crate) fn load_energy(args: &Args) -> EnergyTable {
    match args.options.get("energy") {
        None => EnergyTable::default(),
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read energy table {path:?}: {e}");
                std::process::exit(2);
            });
            mocha_json::parse(&text)
                .and_then(|v| mocha_json::FromJson::from_json(&v))
                .unwrap_or_else(|e| {
                    eprintln!("invalid energy table {path:?}: {e}");
                    std::process::exit(2);
                })
        }
    }
}

fn load_network(args: &Args) -> Network {
    let Some(name) = args.positional.first() else {
        eprintln!("missing <network> argument (try `mocha-sim networks`)");
        std::process::exit(2);
    };
    network::by_name(name).unwrap_or_else(|| {
        eprintln!("unknown network {name:?} (try `mocha-sim networks`)");
        std::process::exit(2);
    })
}

/// `simulate` subcommand.
pub fn simulate(args: &Args) -> i32 {
    if let Err(code) = strict(
        args,
        1,
        &[
            "accelerator",
            "objective",
            "profile",
            "seed",
            "trace",
            "json",
            "no-verify",
            "fabric",
            "energy",
            "obs",
            "threads",
            "faults",
        ],
    ) {
        return code;
    }
    let fault_plan = match crate::config::fault_plan(args) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let net = load_network(args);
    let obj = objective(&args.opt("objective", "edp"));
    let acc = accelerator(&args.opt("accelerator", "mocha"), obj);
    let prof = profile(&args.opt("profile", "nominal"));
    let seed = args.opt_u64("seed", 42);

    let workload = Workload::generate(net, prof, seed);
    let mut acc = acc;
    acc.fabric = match args.options.get("fabric") {
        None => acc.fabric,
        Some(_) => load_fabric(args),
    };
    let fault_fabric = acc.fabric;
    let mut sim = Simulator::new(acc);
    sim.energy = load_energy(args);
    sim.verify = !args.flag("no-verify");
    // With `--obs` the run is recorded and the event stream exported as
    // JSON lines (a file, or stdout with `-` — the report then moves to
    // stderr so the stream stays clean for piping into `mocha-sim trace`).
    let obs_path = args.options.get("obs").cloned();
    let mut rec = mocha::obs::MemRecorder::new();
    let run = match &obs_path {
        None => sim.run(&workload),
        Some(_) => sim.run_with(&workload, &mut rec),
    };
    let table = sim.energy;
    let report = run.report(&table);
    let fault_replay = fault_plan.as_ref().map(|plan| {
        let lens: Vec<u64> = run.groups.iter().map(|g| g.cycles).collect();
        replay_faults(plan, &fault_fabric, &lens)
    });

    use std::fmt::Write as _;
    let mut out = String::new();
    if args.flag("json") {
        let mut json = mocha_json::jobj! {
            "network" => run.network.as_str(),
            "accelerator" => run.accelerator.as_str(),
            "cycles" => report.cycles,
            "seconds" => report.seconds(),
            "gops" => report.gops(),
            "gops_per_watt" => report.gops_per_watt(),
            "watts" => report.watts(),
            "edp_js" => report.edp(),
            "peak_storage_bytes" => report.peak_storage_bytes,
            "dram_bytes" => report.dram_bytes,
            "compression_ratio" => run.compression().overall_ratio(),
            "groups" => run.groups.iter().map(|g| mocha_json::jobj! {
                "name" => g.name(),
                "morph" => g.morph.to_string(),
                "cycles" => g.cycles,
                "spm_peak" => g.spm_peak,
                "work_macs" => g.work_macs,
            }).collect::<Vec<_>>(),
        };
        // Fault keys appear only under `--faults`, keeping fault-free JSON
        // output byte-identical to earlier releases.
        if let Some(f) = &fault_replay {
            json = json
                .with("fault_injected", f.injected)
                .with("fault_retries", f.retries)
                .with("fault_lost_cycles", f.lost_cycles)
                .with("fault_effective_cycles", f.effective_cycles);
        }
        let _ = writeln!(out, "{}", json.to_string_pretty());
    } else {
        let _ = writeln!(
            out,
            "{} on {} ({} groups)",
            run.network,
            run.accelerator,
            run.groups.len()
        );
        for g in &run.groups {
            let _ = writeln!(
                out,
                "  {:20} {:>36}  {:>10} cyc  {:>7.1} GOPS  {:>6.1} KB",
                g.name(),
                g.morph.to_string(),
                g.cycles,
                g.gops(table.clock_ghz),
                g.spm_peak as f64 / 1024.0,
            );
            if args.flag("trace") {
                let trace = Trace::new(&g.phases, g.morph.buffering);
                // Cap at 24 rows per group so big layers stay readable.
                let gantt = trace.gantt(100);
                for line in gantt.lines().take(25) {
                    let _ = writeln!(out, "      {line}");
                }
                if g.phases.len() > 24 {
                    let _ = writeln!(out, "      ... ({} more tiles)", g.phases.len() - 24);
                }
            }
        }
        let _ = writeln!(
            out,
            "total: {} cycles ({:.3} ms) | {:.1} GOPS | {:.1} GOPS/W | {:.1} KB storage | {:.2} MB DRAM | ratio {:.2}x",
            report.cycles,
            report.seconds() * 1e3,
            report.gops(),
            report.gops_per_watt(),
            report.peak_storage_bytes as f64 / 1024.0,
            report.dram_bytes as f64 / 1e6,
            run.compression().overall_ratio(),
        );
        if let Some(f) = &fault_replay {
            let base = f.effective_cycles - f.lost_cycles;
            let _ = writeln!(
                out,
                "faults: {} injected | {} group retries | {} cycles lost | effective {} cycles (+{:.1} %)",
                f.injected,
                f.retries,
                f.lost_cycles,
                f.effective_cycles,
                if base == 0 { 0.0 } else { 100.0 * f.lost_cycles as f64 / base as f64 },
            );
        }
    }

    match obs_path.as_deref() {
        None => print!("{out}"),
        Some("-") => {
            print!("{}", rec.to_jsonl());
            eprint!("{out}");
        }
        Some(path) => {
            if let Err(e) = std::fs::write(path, rec.to_jsonl()) {
                eprintln!("cannot write {path:?}: {e}");
                return 2;
            }
            print!("{out}");
        }
    }
    0
}

/// Outcome of the single-tenant fault replay `simulate --faults` runs over
/// the recorded group schedule.
struct FaultReplay {
    /// Fault events landing before the (extended) end of the run.
    injected: u64,
    /// Group retries triggered (a fault mid-group loses the partial window).
    retries: u64,
    /// Executed cycles lost and redone.
    lost_cycles: u64,
    /// Run length including redone work (`Σ group cycles + lost_cycles`).
    effective_cycles: u64,
}

/// Replays a seeded fault timeline over a finished single-tenant run: every
/// fault landing strictly inside a group's execution window retries that
/// group from scratch (the partially executed window is lost work),
/// extending the virtual clock; a fault at a group boundary costs nothing
/// (the group had committed — same tie-break as the runtime scheduler).
/// Each group retries at most `plan.max_retries` times, after which the
/// controller forces it through and later faults in its window are only
/// counted. Full quarantine-and-remorph / fail-stop fidelity lives in
/// `mocha-sim runtime`, which has spare tenancy to re-carve around;
/// a single-tenant fabric does not.
fn replay_faults(
    plan: &mocha::fault::FaultPlan,
    fabric: &FabricConfig,
    group_cycles: &[u64],
) -> FaultReplay {
    let mut timeline = mocha::fault::FaultTimeline::new(plan, fabric);
    let mut r = FaultReplay {
        injected: 0,
        retries: 0,
        lost_cycles: 0,
        effective_cycles: 0,
    };
    let mut clock = 0u64;
    for &len in group_cycles {
        let mut start = clock;
        let mut end = start + len;
        let mut budget = plan.max_retries;
        while timeline.peek().is_some_and(|e| e.at < end) {
            let at = timeline.pop().expect("peeked").at;
            r.injected += 1;
            if at <= start || budget == 0 {
                continue;
            }
            budget -= 1;
            r.retries += 1;
            r.lost_cycles += at - start;
            start = at;
            end = at + len;
        }
        clock = end;
    }
    r.effective_cycles = clock;
    r
}

/// `decide` subcommand: show what the controller would pick at a layer.
pub fn decide(args: &Args) -> i32 {
    if let Err(code) = strict(
        args,
        1,
        &["layer", "profile", "fabric", "energy", "threads"],
    ) {
        return code;
    }
    let net = load_network(args);
    let prof = profile(&args.opt("profile", "nominal"));
    let layer_name = args.opt("layer", &net.layers()[0].name);
    let Some(start) = net.layers().iter().position(|l| l.name == layer_name) else {
        eprintln!("no layer named {layer_name:?} in {}", net.name);
        return 2;
    };

    let fabric = load_fabric(args);
    let costs = CodecCostTable::default();
    let energy = load_energy(args);
    let ctx = PlanContext {
        fabric: &fabric,
        codec_costs: &costs,
        energy: &energy,
    };
    let est = SparsityEstimate {
        ifmap_sparsity: prof.input,
        ifmap_mean_run: 1.0 + 5.0 * prof.input,
        kernel_sparsity: prof.weights,
        ofmap_sparsity: 0.5,
        ofmap_mean_run: 2.0,
    };

    println!("layer: {}", net.layers()[start]);
    for (name, policy) in [
        (
            "mocha",
            Policy::Mocha {
                objective: Objective::Edp,
            },
        ),
        ("tiling", Policy::TilingOnly),
        ("fusion", Policy::FusionOnly),
        ("parallel", Policy::ParallelismOnly),
    ] {
        let d = controller::decide(&ctx, policy, &net.layers()[start..], &est, true);
        println!(
            "  {:9} fuses {} layer(s), {:>36}: {:>10} cycles, {:>8.1} µJ, {:>6.1} KB  ({} candidates)",
            name,
            d.group_len,
            d.morph.to_string(),
            d.plan.cycles,
            d.plan.energy_pj / 1e6,
            d.plan.spm_peak as f64 / 1024.0,
            d.candidates,
        );
    }
    0
}

/// `area` subcommand.
pub fn area(args: &Args) -> i32 {
    if let Err(code) = strict(args, 0, &["grid", "spm-kb"]) {
        return code;
    }
    let grid = args.opt_u64("grid", 8) as usize;
    let spm_kb = args.opt_u64("spm-kb", 128) as usize;
    let table = AreaTable::default();

    let mut mocha = FabricConfig::mocha();
    mocha.pe_rows = grid;
    mocha.pe_cols = grid;
    mocha.spm_banks = (spm_kb / mocha.spm_bank_kb).max(1);
    mocha.codec_engines = grid + 2 * mocha.dma_engines;
    let mut base = FabricConfig::baseline();
    base.pe_rows = grid;
    base.pe_cols = grid;
    base.spm_banks = (spm_kb / base.spm_bank_kb).max(1);

    let ma = table.price(&mocha.inventory());
    let ba = table.price(&base.inventory());
    println!("fabric: {grid}x{grid} PEs, {spm_kb} KB scratchpad");
    println!("  {:22} {:>9} {:>9}", "component", "baseline", "mocha");
    for (name, b, m) in [
        ("PE array", ba.pes_mm2, ma.pes_mm2),
        ("scratchpad SRAM", ba.sram_mm2, ma.sram_mm2),
        ("NoC", ba.noc_mm2, ma.noc_mm2),
        ("DMA", ba.dma_mm2, ma.dma_mm2),
        ("compression engines", ba.codec_mm2, ma.codec_mm2),
        ("control", ba.control_mm2, ma.control_mm2),
    ] {
        println!("  {name:22} {b:>8.3}  {m:>8.3}");
    }
    let (bt, mt) = (ba.total_mm2(), ma.total_mm2());
    println!(
        "  {:22} {bt:>8.3}  {mt:>8.3}  ({:+.0} %)",
        "TOTAL",
        100.0 * (mt - bt) / bt
    );
    0
}

/// `codec` subcommand.
pub fn codec(args: &Args) -> i32 {
    if let Err(code) = strict(args, 0, &["sparsity", "clustered", "elements", "seed"]) {
        return code;
    }
    let sparsity = args.opt_f64("sparsity", 0.6);
    let elements = args.opt_u64("elements", 65536) as usize;
    let seed = args.opt_u64("seed", 1);
    if !(0.0..=1.0).contains(&sparsity) {
        eprintln!("--sparsity must be in [0, 1]");
        return 2;
    }
    let shape = mocha::model::TensorShape::new(1, 1, elements.max(1));
    let mut rng = gen::rng(seed);
    let data = if args.flag("clustered") {
        gen::clustered_activations(shape, sparsity, 8, &mut rng)
    } else {
        gen::activations(shape, sparsity, &mut rng)
    };
    let stats = mocha::model::stats::analyze(data.data());
    println!(
        "{} elements, measured sparsity {:.1} %, mean zero-run {:.1}",
        elements,
        100.0 * stats.sparsity(),
        stats.mean_zero_run()
    );
    for codec in [Codec::None, Codec::Zrle, Codec::Bitmask, Codec::Nibble] {
        let c = Compressed::encode(codec, data.data());
        assert_eq!(c.decode(), data.data(), "roundtrip");
        println!(
            "  {:8} {:>8} B  ratio {:.2}x",
            codec.name(),
            c.bytes(),
            c.ratio()
        );
    }
    println!("  best: {}", best_codec(data.data()).name());
    0
}

/// `repro` subcommand: regenerate the reconstructed paper experiments —
/// the same suite as `cargo run -p mocha-bench --bin repro`, reachable
/// from the installed CLI. Tables are byte-identical for every
/// `--threads` value: sweeps shard over the engine but reduce in
/// canonical point order.
pub fn repro(args: &Args) -> i32 {
    if let Err(code) = strict(args, mocha_bench::ALL.len(), &["quick", "threads", "cache"]) {
        return code;
    }
    let ids: Vec<&str> = if args.positional.is_empty() || args.positional.iter().any(|a| a == "all")
    {
        mocha_bench::ALL.to_vec()
    } else {
        args.positional.iter().map(String::as_str).collect()
    };
    let cfg = mocha_bench::ExpConfig {
        quick: args.flag("quick"),
        seed: 42,
        threads: args.opt_u64("threads", 0) as usize,
        cache: args.flag("cache"),
    };
    for id in ids {
        match mocha_bench::run_by_id(id, &cfg) {
            Some(out) => println!("{out}"),
            None => {
                eprintln!("unknown experiment {id:?}; known: {:?}", mocha_bench::ALL);
                return 2;
            }
        }
    }
    0
}

/// `networks` subcommand.
pub fn networks(args: &Args) -> i32 {
    if let Err(code) = strict(args, 0, &[]) {
        return code;
    }
    for name in [
        "tiny",
        "lenet5",
        "mobilenet",
        "mobilenet_v1",
        "alexnet",
        "vgg16",
    ] {
        let n = network::by_name(name).unwrap();
        println!(
            "{:12} {:3} layers  input {:>11}  {:>8.1} M MACs  {:>7.2} MB weights",
            name,
            n.len(),
            n.input_shape().to_string(),
            n.total_macs() as f64 / 1e6,
            n.total_weight_bytes() as f64 / 1e6,
        );
    }
    0
}

/// `pareto` subcommand: the layer's trade-off surface.
pub fn pareto(args: &Args) -> i32 {
    if let Err(code) = strict(
        args,
        1,
        &["layer", "profile", "fabric", "energy", "threads"],
    ) {
        return code;
    }
    let net = load_network(args);
    let prof = profile(&args.opt("profile", "nominal"));
    let layer_name = args.opt("layer", &net.layers()[0].name);
    let Some(start) = net.layers().iter().position(|l| l.name == layer_name) else {
        eprintln!("no layer named {layer_name:?} in {}", net.name);
        return 2;
    };
    let fabric = load_fabric(args);
    let costs = CodecCostTable::default();
    let energy = load_energy(args);
    let ctx = PlanContext {
        fabric: &fabric,
        codec_costs: &costs,
        energy: &energy,
    };
    let est = SparsityEstimate {
        ifmap_sparsity: prof.input,
        ifmap_mean_run: 1.0 + 5.0 * prof.input,
        kernel_sparsity: prof.weights,
        ofmap_sparsity: 0.5,
        ofmap_mean_run: 2.0,
    };
    let front = mocha::core::dse::explore_layer(&ctx, &net.layers()[start], &est, true);
    println!("layer: {}", net.layers()[start]);
    println!(
        "Pareto front over (cycles, energy, storage): {} points",
        front.len()
    );
    println!(
        "{:>12}  {:>10}  {:>9}  config",
        "cycles", "energy µJ", "SPM KB"
    );
    for p in &front {
        println!(
            "{:>12}  {:>10.1}  {:>9.1}  {}",
            p.plan.cycles,
            p.plan.energy_pj / 1e6,
            p.plan.spm_peak as f64 / 1024.0,
            p.morph,
        );
    }
    0
}
