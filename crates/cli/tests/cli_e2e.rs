//! End-to-end tests driving the `mocha-sim` binary: the multi-tenant
//! `runtime` command on a seeded workload (with golden-model verification
//! on, so any divergence under contention aborts the run), the `serve`
//! JSON-lines batch protocol, and the scriptable error contract (one-line
//! stderr + exit code 2).

use mocha_json::ToJson;
use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Output, Stdio};

fn mocha_sim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mocha-sim"))
        .args(args)
        .output()
        .expect("spawn mocha-sim")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("utf-8 stderr")
}

/// The acceptance path: `mocha-sim runtime` on a seeded multi-tenant
/// workload. Verification is on by default, so every executed group was
/// checked against the golden executor in-process — a non-zero exit would
/// mean morphing under contention changed a result. The JSON report must
/// also match the library run bit for bit (cross-process determinism).
#[test]
fn runtime_on_seeded_workload_matches_the_library_and_the_golden_model() {
    let out = mocha_sim(&[
        "runtime", "--jobs", "5", "--load", "3.0", "--seed", "13", "--json",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    let traffic = mocha::runtime::TrafficConfig {
        jobs: 5,
        load: 3.0,
        seed: 13,
        mix: mocha::runtime::Mix::Quick,
    };
    let subs = mocha::runtime::generate(&traffic);
    let report = mocha::runtime::run(&mocha::runtime::RuntimeConfig::default(), &subs);
    assert_eq!(report.completed(), 5);
    let expected = format!("{}\n", report.to_json().to_string_pretty());
    assert_eq!(stdout(&out), expected);
}

/// The human-readable table carries one row per job plus the fleet summary.
#[test]
fn runtime_table_lists_every_job_and_a_summary() {
    let out = mocha_sim(&["runtime", "--jobs", "3", "--load", "2.0", "--seed", "5"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for needle in ["job", "latency", "remorphs", "throughput", "p99", "GOPS/W"] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    // Header + column row + 3 job rows + summary.
    assert_eq!(text.lines().count(), 6, "unexpected shape:\n{text}");
}

/// `serve` over stdin: two requests in, two job reports plus one summary
/// line out, all valid JSON.
#[test]
fn serve_answers_a_stdin_batch_with_json_lines() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mocha-sim"))
        .args(["serve"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mocha-sim serve");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(
            b"{\"network\": \"tiny\", \"profile\": \"sparse\", \"priority\": \"high\", \"seed\": 7}\n\
              {\"network\": \"tiny\", \"arrival_cycle\": 5000}\n\n",
        )
        .expect("write requests");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    let text = stdout(&out);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "expected 2 job reports + summary:\n{text}");
    for line in &lines {
        mocha_json::parse(line).expect("every output line is JSON");
    }
    let summary = mocha_json::parse(lines[2]).unwrap();
    assert_eq!(summary.get("completed").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(summary.get("summary").and_then(|v| v.as_bool()), Some(true));
}

/// A malformed request is rejected with the offending line number, a
/// one-line stderr message and exit code 2.
#[test]
fn serve_rejects_bad_requests_with_line_numbers() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mocha-sim"))
        .args(["serve"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mocha-sim serve");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(b"{\"network\": \"nope\"}\n")
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.starts_with("line 1:"), "stderr: {err}");
    assert_eq!(err.lines().count(), 1, "stderr: {err}");
}

/// `runtime --obs` exports the observability event stream: every line is a
/// tagged JSON object, all three event kinds are present, and two identical
/// seeded invocations produce byte-identical files.
#[test]
fn runtime_obs_export_is_deterministic_and_well_formed() {
    let dir = std::env::temp_dir();
    let f1 = dir.join("mocha_obs_e2e_1.jsonl");
    let f2 = dir.join("mocha_obs_e2e_2.jsonl");
    for f in [&f1, &f2] {
        let out = mocha_sim(&[
            "runtime",
            "--jobs",
            "3",
            "--load",
            "2.0",
            "--seed",
            "7",
            "--obs",
            f.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "stderr: {}", stderr(&out));
    }
    let a = std::fs::read_to_string(&f1).expect("obs file written");
    let b = std::fs::read_to_string(&f2).expect("obs file written");
    assert!(!a.is_empty());
    assert_eq!(a, b, "two seeded runs must export byte-identical streams");

    let mut kinds = std::collections::BTreeSet::new();
    for line in a.lines() {
        let v = mocha_json::parse(line).expect("every obs line is JSON");
        let kind = v
            .get("event")
            .and_then(|e| e.as_str())
            .unwrap_or_else(|| panic!("untagged obs line: {line}"));
        kinds.insert(kind.to_string());
    }
    assert!(kinds.contains("span"), "kinds: {kinds:?}");
    assert!(kinds.contains("counter"), "kinds: {kinds:?}");
    assert!(kinds.contains("hist"), "kinds: {kinds:?}");
    let _ = std::fs::remove_file(f1);
    let _ = std::fs::remove_file(f2);
}

/// `serve --tcp`: a batch connection followed by a `stats` connection. The
/// snapshot must be well-formed JSON whose job counters reconcile with the
/// batch summary: every request was submitted, admitted and finished
/// (`admitted == finished + in_flight`, nothing rejected).
#[test]
fn serve_tcp_stats_snapshot_reconciles_with_the_batch() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mocha-sim"))
        .args(["serve", "--tcp", "127.0.0.1:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mocha-sim serve --tcp");
    let mut child_err = BufReader::new(child.stderr.take().expect("stderr"));
    let mut line = String::new();
    child_err.read_line(&mut line).expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();

    // Connection 1: a two-job batch.
    let stream = std::net::TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    writer
        .write_all(
            b"{\"network\": \"tiny\", \"profile\": \"sparse\", \"seed\": 3}\n\
              {\"network\": \"tiny\", \"arrival_cycle\": 4000}\n\n",
        )
        .expect("send batch");
    let mut lines = Vec::new();
    for l in BufReader::new(stream).lines() {
        lines.push(l.expect("read response"));
    }
    assert_eq!(lines.len(), 3, "2 job reports + summary: {lines:?}");
    let summary = mocha_json::parse(&lines[2]).expect("summary JSON");
    assert_eq!(summary.get("completed").and_then(|v| v.as_u64()), Some(2));

    // Connection 2: the stats snapshot.
    let stream = std::net::TcpStream::connect(&addr).expect("connect stats");
    let mut writer = stream.try_clone().expect("clone");
    writer.write_all(b"stats\n").expect("send stats");
    let mut reader = BufReader::new(stream);
    let mut snap_line = String::new();
    reader.read_line(&mut snap_line).expect("read snapshot");
    child.kill().expect("kill server");
    let _ = child.wait();

    let snap = mocha_json::parse(snap_line.trim()).expect("snapshot is JSON");
    let jobs = snap.get("jobs").expect("jobs block");
    let get = |k: &str| jobs.get(k).and_then(|v| v.as_u64()).expect(k);
    assert_eq!(get("submitted"), 2);
    assert_eq!(get("admitted"), 2);
    assert_eq!(get("rejected"), 0);
    assert_eq!(get("admitted"), get("finished") + get("in_flight"));
    let counters = snap.get("counters").expect("counters block");
    let counter = |k: &str| counters.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
    assert_eq!(counter("serve.requests"), 2);
    assert_eq!(counter("serve.batches"), 1);
    assert_eq!(counter("runtime.jobs_finished"), 2);
    assert!(snap.get("hists").is_some());
    assert!(snap.get("spans").and_then(|v| v.as_u64()).unwrap_or(0) > 0);
}

/// `--obs -` keeps stdout pure for pipelines: every stdout line is a
/// tagged obs event, and the human report moves to stderr intact.
#[test]
fn obs_dash_streams_events_on_stdout_and_the_report_on_stderr() {
    let out = mocha_sim(&[
        "runtime", "--jobs", "2", "--load", "2.0", "--seed", "7", "--obs", "-",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let events = stdout(&out);
    assert!(!events.is_empty());
    for line in events.lines() {
        let v = mocha_json::parse(line).unwrap_or_else(|e| panic!("bad obs line {line:?}: {e}"));
        assert!(v.get("event").is_some(), "untagged line: {line}");
    }
    let report = stderr(&out);
    for needle in ["job", "latency", "throughput", "GOPS/W"] {
        assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
    }

    // `simulate --obs -` keeps the same contract.
    let out = mocha_sim(&["simulate", "tiny", "--obs", "-", "--no-verify"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    for line in stdout(&out).lines() {
        mocha_json::parse(line).unwrap_or_else(|e| panic!("bad obs line {line:?}: {e}"));
    }
    assert!(stderr(&out).contains("tiny"), "stderr: {}", stderr(&out));
}

/// The analysis loop: `runtime --obs` → `trace summary` / `trace export`.
/// Summaries, profile JSON and Chrome exports are byte-identical across two
/// identical seeded runs, and the Chrome export is one well-formed JSON
/// document with complete ("X") events.
#[test]
fn trace_summary_and_export_are_deterministic() {
    let dir = std::env::temp_dir();
    let mut summaries = Vec::new();
    let mut profiles = Vec::new();
    let mut chromes = Vec::new();
    for i in 0..2 {
        let obs = dir.join(format!("mocha_trace_e2e_{i}.jsonl"));
        let chrome = dir.join(format!("mocha_trace_e2e_{i}.chrome.json"));
        let out = mocha_sim(&[
            "runtime",
            "--jobs",
            "3",
            "--load",
            "2.0",
            "--seed",
            "7",
            "--obs",
            obs.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "stderr: {}", stderr(&out));

        let summary = mocha_sim(&["trace", "summary", obs.to_str().unwrap()]);
        assert!(summary.status.success(), "stderr: {}", stderr(&summary));
        summaries.push(stdout(&summary));

        let profile = mocha_sim(&["trace", "summary", obs.to_str().unwrap(), "--json"]);
        assert!(profile.status.success(), "stderr: {}", stderr(&profile));
        profiles.push(stdout(&profile));

        let export = mocha_sim(&[
            "trace",
            "export",
            obs.to_str().unwrap(),
            "--chrome",
            chrome.to_str().unwrap(),
        ]);
        assert!(export.status.success(), "stderr: {}", stderr(&export));
        chromes.push(std::fs::read_to_string(&chrome).expect("chrome export written"));
        let _ = std::fs::remove_file(obs);
        let _ = std::fs::remove_file(chrome);
    }
    assert_eq!(summaries[0], summaries[1], "summary must be byte-stable");
    assert_eq!(profiles[0], profiles[1], "profile JSON must be byte-stable");
    assert_eq!(chromes[0], chromes[1], "chrome export must be byte-stable");

    let text = &summaries[0];
    for needle in ["makespan", "critical path", "overlap", "energy", "p95"] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    let chrome = mocha_json::parse(&chromes[0]).expect("chrome export is JSON");
    let events = chrome
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(events
        .iter()
        .any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")));
}

/// `trace summary -` reads the stream from stdin, so
/// `runtime --obs - | trace summary -` works as a single pipeline.
#[test]
fn trace_summary_reads_stdin() {
    let run = mocha_sim(&[
        "runtime", "--jobs", "2", "--load", "2.0", "--seed", "7", "--obs", "-",
    ]);
    assert!(run.status.success());
    let mut child = Command::new(env!("CARGO_BIN_EXE_mocha-sim"))
        .args(["trace", "summary", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn trace summary -");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(&run.stdout)
        .expect("pipe stream");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("2 job(s)"), "got:\n{}", stdout(&out));
}

/// Malformed or truncated trace input exits 2 with a one-line stderr
/// message naming the offending line — never a panic, never partial output.
#[test]
fn trace_rejects_malformed_input_with_a_line_number() {
    let dir = std::env::temp_dir();
    let bad = dir.join("mocha_trace_e2e_bad.jsonl");
    std::fs::write(
        &bad,
        "{\"event\":\"span\",\"path\":\"a\",\"start\":0,\"end\":5}\nnot json\n",
    )
    .expect("write bad stream");
    let truncated = dir.join("mocha_trace_e2e_trunc.jsonl");
    std::fs::write(
        &truncated,
        "{\"event\":\"counter\",\"name\":\"x\",\"value\":1}\n{\"event\":\"span\",\"pa",
    )
    .expect("write truncated stream");

    for (file, line) in [(&bad, "line 2:"), (&truncated, "line 2:")] {
        for action in [&["trace", "summary"][..], &["trace", "diff"][..]] {
            let mut args: Vec<&str> = action.to_vec();
            args.push(file.to_str().unwrap());
            if action[1] == "diff" {
                args.push(file.to_str().unwrap());
            }
            let out = mocha_sim(&args);
            assert_eq!(out.status.code(), Some(2), "args: {args:?}");
            let err = stderr(&out);
            assert_eq!(err.lines().count(), 1, "stderr: {err}");
            assert!(err.contains(line), "stderr: {err}");
            assert!(stdout(&out).is_empty(), "partial stdout: {}", stdout(&out));
        }
    }
    let _ = std::fs::remove_file(bad);
    let _ = std::fs::remove_file(truncated);
}

/// The regression gate: a profile diffed against its own stream passes with
/// exit 0; a clearly different run trips `--fail-on-regression` with exit 1
/// (distinct from the exit-2 usage/input contract).
#[test]
fn trace_diff_gates_regressions() {
    let dir = std::env::temp_dir();
    let obs = dir.join("mocha_trace_e2e_gate.jsonl");
    let baseline = dir.join("mocha_trace_e2e_gate.profile.json");
    let run = mocha_sim(&[
        "runtime",
        "--jobs",
        "3",
        "--load",
        "2.0",
        "--seed",
        "7",
        "--obs",
        obs.to_str().unwrap(),
    ]);
    assert!(run.status.success());
    let profile = mocha_sim(&["trace", "summary", obs.to_str().unwrap(), "--json"]);
    assert!(profile.status.success());
    std::fs::write(&baseline, profile.stdout).expect("write baseline");

    // Saved profile vs the stream it came from: no deltas, exit 0.
    let clean = mocha_sim(&[
        "trace",
        "diff",
        baseline.to_str().unwrap(),
        obs.to_str().unwrap(),
        "--fail-on-regression",
        "0",
    ]);
    assert!(clean.status.success(), "stderr: {}", stderr(&clean));
    assert!(stdout(&clean).contains("makespan_cycles"));
    assert!(!stdout(&clean).contains("FAIL"));

    // A heavier run against the same baseline must trip the gate.
    let obs2 = dir.join("mocha_trace_e2e_gate2.jsonl");
    let run2 = mocha_sim(&[
        "runtime",
        "--jobs",
        "6",
        "--load",
        "2.0",
        "--seed",
        "7",
        "--obs",
        obs2.to_str().unwrap(),
    ]);
    assert!(run2.status.success());
    let gated = mocha_sim(&[
        "trace",
        "diff",
        baseline.to_str().unwrap(),
        obs2.to_str().unwrap(),
        "--fail-on-regression",
        "5",
    ]);
    assert_eq!(gated.status.code(), Some(1), "stderr: {}", stderr(&gated));
    assert!(stdout(&gated).contains("FAIL"));
    assert!(
        stderr(&gated).starts_with("regression:"),
        "stderr: {}",
        stderr(&gated)
    );
    assert_eq!(stderr(&gated).lines().count(), 1);
    let _ = std::fs::remove_file(obs);
    let _ = std::fs::remove_file(obs2);
    let _ = std::fs::remove_file(baseline);
}

/// Unknown subcommands fail with a single-line stderr message and exit
/// code 2 — no usage dump to scrape around.
#[test]
fn unknown_subcommand_is_a_one_line_error() {
    let out = mocha_sim(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert_eq!(err.lines().count(), 1, "stderr: {err}");
    assert!(err.contains("frobnicate"), "stderr: {err}");
    assert!(stdout(&out).is_empty());
}

/// Unknown options and stray positionals are rejected per subcommand.
#[test]
fn unknown_flags_and_stray_arguments_exit_nonzero() {
    for args in [
        &["runtime", "--bogus", "3"][..],
        &["serve", "--jobs", "4"][..],
        &["simulate", "tiny", "extra"][..],
        &["networks", "tiny"][..],
        &["area", "--sparsity", "0.5"][..],
    ] {
        let out = mocha_sim(args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
        assert_eq!(stderr(&out).lines().count(), 1, "args: {args:?}");
    }
}

/// Invalid option *values* (not just unknown keys) are also exit code 2.
#[test]
fn invalid_option_values_exit_nonzero() {
    for args in [
        &["runtime", "--policy", "greedy"][..],
        &["runtime", "--mix", "heavy"][..],
        &["runtime", "--load", "-1"][..],
        &["runtime", "--max-tenants", "0"][..],
    ] {
        let out = mocha_sim(args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
    }
}

/// No arguments prints usage to stderr and exits 2 (stdout stays clean for
/// pipelines); `help` prints the same usage to stdout and exits 0.
#[test]
fn bare_invocation_is_an_error_but_help_is_not() {
    let bare = mocha_sim(&[]);
    assert_eq!(bare.status.code(), Some(2));
    assert!(stdout(&bare).is_empty());
    assert!(stderr(&bare).contains("USAGE"));

    let help = mocha_sim(&["help"]);
    assert!(help.status.success());
    assert!(stdout(&help).contains("USAGE"));
    assert!(stdout(&help).contains("mocha-sim serve"));
}

/// The determinism matrix: the same seeded workload at `--threads 1`, `2`
/// and `8` must produce byte-identical reports AND byte-identical obs
/// streams. Parallelism is an execution detail — the engine reduces in
/// canonical order, so worker count can never leak into any output.
#[test]
fn thread_count_never_changes_any_byte_of_output() {
    let dir = std::env::temp_dir();
    let mut runs = Vec::new();
    for threads in ["1", "2", "8"] {
        let obs = dir.join(format!("mocha_threads_e2e_{threads}.jsonl"));
        let out = mocha_sim(&[
            "runtime",
            "--jobs",
            "4",
            "--load",
            "2.5",
            "--seed",
            "11",
            "--json",
            "--threads",
            threads,
            "--obs",
            obs.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "--threads {threads} stderr: {}",
            stderr(&out)
        );
        let obs_bytes = std::fs::read_to_string(&obs).expect("obs file written");
        let _ = std::fs::remove_file(&obs);
        runs.push((threads, stdout(&out), obs_bytes));
    }
    let (_, base_out, base_obs) = &runs[0];
    for (threads, out, obs) in &runs[1..] {
        assert_eq!(
            out, base_out,
            "--threads {threads} report differs from --threads 1"
        );
        assert_eq!(
            obs, base_obs,
            "--threads {threads} obs stream differs from --threads 1"
        );
    }
}

/// `repro r1` — the sharded experiment sweep — is byte-identical across
/// thread counts too (the ISSUE acceptance criterion, end to end).
#[test]
fn repro_r1_is_byte_identical_across_thread_counts() {
    let mut tables = Vec::new();
    for threads in ["1", "2", "8"] {
        let out = mocha_sim(&["repro", "r1", "--quick", "--threads", threads]);
        assert!(
            out.status.success(),
            "--threads {threads} stderr: {}",
            stderr(&out)
        );
        tables.push((threads, stdout(&out)));
    }
    let (_, base) = &tables[0];
    for (threads, table) in &tables[1..] {
        assert_eq!(table, base, "--threads {threads} table differs");
    }
}

/// `--threads` rejects zero and garbage with the one-line exit-2 contract.
#[test]
fn bad_thread_counts_exit_nonzero() {
    for t in ["0", "-1", "lots", ""] {
        let out = mocha_sim(&["runtime", "--jobs", "1", "--threads", t]);
        assert_eq!(out.status.code(), Some(2), "--threads {t:?}");
        assert_eq!(stderr(&out).lines().count(), 1, "--threads {t:?}");
    }
}

/// Malformed `--faults` specs hit the one-line exit-2 contract on every
/// command that accepts the option: missing rate, bad values, unknown keys
/// and bad modes are all rejected before any work starts.
#[test]
fn malformed_fault_specs_exit_nonzero() {
    for spec in [
        "",
        "rate=",
        "rate=fast",
        "rate=-3",
        "seed=7", // rate is mandatory
        "rate=5,mode=maybe",
        "rate=5,transient=2.0",
        "rate=5,bogus=1",
        "rate=5,seed",
    ] {
        for cmd in [
            &["runtime", "--jobs", "1", "--faults"][..],
            &["simulate", "tiny", "--no-verify", "--faults"][..],
            &["serve", "--faults"][..],
        ] {
            let mut args = cmd.to_vec();
            args.push(spec);
            let out = mocha_sim(&args);
            assert_eq!(out.status.code(), Some(2), "args: {args:?}");
            assert_eq!(
                stderr(&out).lines().count(),
                1,
                "args: {args:?} stderr: {}",
                stderr(&out)
            );
            assert!(stdout(&out).is_empty(), "args: {args:?}");
        }
    }
}

/// `repro` keeps the strict-argument contract around the new r2 experiment:
/// unknown ids and unknown options are one-line exit-2 errors.
#[test]
fn repro_rejects_unknown_ids_and_options() {
    for args in [
        &["repro", "r99"][..],
        &["repro", "r2", "--bogus", "1"][..],
        &["repro", "r2", "--faults", "rate=5"][..],
    ] {
        let out = mocha_sim(args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
        assert_eq!(stderr(&out).lines().count(), 1, "args: {args:?}");
    }
}

/// The determinism matrix extended to fault injection: a seeded faulted
/// workload (retries, quarantines and re-morphs in play) still produces
/// byte-identical JSON reports and obs streams at `--threads 1`, `2`, `8`.
#[test]
fn faulted_runtime_is_byte_identical_across_thread_counts() {
    let dir = std::env::temp_dir();
    let mut runs = Vec::new();
    for threads in ["1", "2", "8"] {
        let obs = dir.join(format!("mocha_fault_threads_e2e_{threads}.jsonl"));
        let out = mocha_sim(&[
            "runtime",
            "--jobs",
            "8",
            "--load",
            "2.0",
            "--seed",
            "42",
            "--faults",
            "rate=15,seed=9",
            "--json",
            "--threads",
            threads,
            "--obs",
            obs.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "--threads {threads} stderr: {}",
            stderr(&out)
        );
        let obs_bytes = std::fs::read_to_string(&obs).expect("obs file written");
        let _ = std::fs::remove_file(&obs);
        runs.push((threads, stdout(&out), obs_bytes));
    }
    let (_, base_out, base_obs) = &runs[0];
    assert!(
        base_obs.contains("fault"),
        "rate 15 must inject at least one fault"
    );
    for (threads, out, obs) in &runs[1..] {
        assert_eq!(
            out, base_out,
            "--threads {threads} faulted report differs from --threads 1"
        );
        assert_eq!(
            obs, base_obs,
            "--threads {threads} faulted obs stream differs from --threads 1"
        );
    }
}

/// `repro r2` — the degradation-curve sweep — is byte-identical across
/// thread counts and carries the headline quarantine-beats-fail-stop note.
#[test]
fn repro_r2_is_byte_identical_across_thread_counts() {
    let mut tables = Vec::new();
    for threads in ["1", "2", "8"] {
        let out = mocha_sim(&["repro", "r2", "--quick", "--threads", threads]);
        assert!(
            out.status.success(),
            "--threads {threads} stderr: {}",
            stderr(&out)
        );
        tables.push((threads, stdout(&out)));
    }
    let (_, base) = &tables[0];
    assert!(
        base.contains("beats fail-stop on goodput AND p99"),
        "headline claim missing:\n{base}"
    );
    for (threads, table) in &tables[1..] {
        assert_eq!(table, base, "--threads {threads} r2 table differs");
    }
}

/// `serve --tcp --faults`: the stats snapshot's job counters reconcile with
/// the fault-aware split (`admitted == finished + failed + in_flight`), and
/// the batch summary reports the retried/failed breakdown.
#[test]
fn serve_tcp_stats_reconciles_under_faults() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mocha-sim"))
        .args([
            "serve",
            "--tcp",
            "127.0.0.1:0",
            "--faults",
            "rate=15,seed=9",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mocha-sim serve --tcp --faults");
    let mut child_err = BufReader::new(child.stderr.take().expect("stderr"));
    let mut line = String::new();
    child_err.read_line(&mut line).expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();

    // Connection 1: a three-job batch under injected faults.
    let stream = std::net::TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    writer
        .write_all(
            b"{\"network\": \"tiny\", \"profile\": \"sparse\", \"seed\": 3}\n\
              {\"network\": \"tiny\", \"arrival_cycle\": 4000}\n\
              {\"network\": \"tiny\", \"arrival_cycle\": 9000}\n\n",
        )
        .expect("send batch");
    let mut lines = Vec::new();
    for l in BufReader::new(stream).lines() {
        lines.push(l.expect("read response"));
    }
    let summary = mocha_json::parse(lines.last().expect("summary line")).expect("summary JSON");
    assert_eq!(summary.get("summary").and_then(|v| v.as_bool()), Some(true));
    let completed = summary
        .get("completed")
        .and_then(|v| v.as_u64())
        .expect("completed");
    let failed = summary
        .get("failed")
        .and_then(|v| v.as_u64())
        .expect("summary carries the failed count");
    assert!(summary.get("retried").is_some(), "summary: {summary:?}");
    assert_eq!(completed + failed, 3, "every job is accounted for");

    // Connection 2: the stats snapshot must reconcile with that outcome.
    let stream = std::net::TcpStream::connect(&addr).expect("connect stats");
    let mut writer = stream.try_clone().expect("clone");
    writer.write_all(b"stats\n").expect("send stats");
    let mut reader = BufReader::new(stream);
    let mut snap_line = String::new();
    reader.read_line(&mut snap_line).expect("read snapshot");
    child.kill().expect("kill server");
    let _ = child.wait();

    let snap = mocha_json::parse(snap_line.trim()).expect("snapshot is JSON");
    let jobs = snap.get("jobs").expect("jobs block");
    let get = |k: &str| jobs.get(k).and_then(|v| v.as_u64()).expect(k);
    assert_eq!(get("submitted"), 3);
    assert_eq!(get("rejected"), 0);
    assert_eq!(get("finished"), completed);
    assert_eq!(get("failed"), failed);
    assert_eq!(
        get("admitted"),
        get("finished") + get("failed") + get("in_flight"),
        "jobs block: {jobs:?}"
    );
}

/// `serve --tcp --shed-policy deadline` with two interleaved clients: the
/// reactor multiplexes both, the doomed request (1-cycle deadline) comes
/// back as an explicit `shed` line, the healthy one runs, and the stats
/// snapshot reconciles the full fate split:
/// `admitted == finished + failed + shed + in_flight`.
#[test]
fn serve_tcp_multi_client_shed_reconciles_in_stats() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mocha-sim"))
        .args(["serve", "--tcp", "127.0.0.1:0", "--shed-policy", "deadline"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mocha-sim serve --tcp --shed-policy deadline");
    let mut child_err = BufReader::new(child.stderr.take().expect("stderr"));
    let mut line = String::new();
    child_err.read_line(&mut line).expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();

    // Client A opens its batch but stalls before the terminator; client B
    // connects afterwards with a request that cannot make its 1-cycle
    // deadline and completes first — the reactor must answer B while A is
    // still open.
    let a = std::net::TcpStream::connect(&addr).expect("connect A");
    let mut a_writer = a.try_clone().expect("clone A");
    a_writer
        .write_all(b"{\"network\": \"tiny\", \"profile\": \"sparse\", \"seed\": 3}\n")
        .expect("A first line");

    let b = std::net::TcpStream::connect(&addr).expect("connect B");
    let mut b_writer = b.try_clone().expect("clone B");
    b_writer
        .write_all(b"{\"network\": \"tiny\", \"arrival_cycle\": 10, \"deadline_cycles\": 1}\n\n")
        .expect("B batch");
    let mut b_lines = Vec::new();
    for l in BufReader::new(b).lines() {
        b_lines.push(l.expect("read B response"));
    }
    assert_eq!(b_lines.len(), 2, "shed line + summary: {b_lines:?}");
    let shed = mocha_json::parse(&b_lines[0]).expect("shed line JSON");
    assert_eq!(shed.get("shed").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(
        shed.get("policy").and_then(|v| v.as_str()),
        Some("deadline")
    );

    // A finishes its batch and still gets its job report.
    a_writer.write_all(b"\n").expect("A terminator");
    let mut a_lines = Vec::new();
    for l in BufReader::new(a).lines() {
        a_lines.push(l.expect("read A response"));
    }
    assert_eq!(a_lines.len(), 2, "job report + summary: {a_lines:?}");
    let summary = mocha_json::parse(&a_lines[1]).expect("summary JSON");
    assert_eq!(summary.get("completed").and_then(|v| v.as_u64()), Some(1));

    // The stats snapshot reconciles the split, shed included.
    let stream = std::net::TcpStream::connect(&addr).expect("connect stats");
    let mut writer = stream.try_clone().expect("clone");
    writer.write_all(b"stats\n").expect("send stats");
    let mut reader = BufReader::new(stream);
    let mut snap_line = String::new();
    reader.read_line(&mut snap_line).expect("read snapshot");
    child.kill().expect("kill server");
    let _ = child.wait();

    let snap = mocha_json::parse(snap_line.trim()).expect("snapshot is JSON");
    let jobs = snap.get("jobs").expect("jobs block");
    let get = |k: &str| jobs.get(k).and_then(|v| v.as_u64()).expect(k);
    assert_eq!(get("shed"), 1);
    assert_eq!(get("finished"), 1);
    assert_eq!(get("rejected"), 0);
    assert_eq!(
        get("admitted"),
        get("finished") + get("failed") + get("shed") + get("in_flight"),
        "jobs block: {jobs:?}"
    );
    let counters = snap.get("counters").expect("counters block");
    let counter = |k: &str| counters.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
    assert_eq!(counter("serve.requests"), 2);
    assert_eq!(counter("serve.shed"), 1);
    assert_eq!(counter("serve.admitted"), 1);
}

/// The TCP reactor inherits the determinism matrix: the same batch served
/// with `--threads 1`, `2` and `8` produces byte-identical responses.
#[test]
fn serve_reactor_is_byte_identical_across_thread_counts() {
    let mut responses = Vec::new();
    for threads in ["1", "2", "8"] {
        let mut child = Command::new(env!("CARGO_BIN_EXE_mocha-sim"))
            .args([
                "serve",
                "--tcp",
                "127.0.0.1:0",
                "--once",
                "--shed-policy",
                "deadline",
                "--slo",
                "400000",
                "--threads",
                threads,
            ])
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn mocha-sim serve --tcp --once");
        let mut child_err = BufReader::new(child.stderr.take().expect("stderr"));
        let mut line = String::new();
        child_err.read_line(&mut line).expect("read listen line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
            .to_string();
        let stream = std::net::TcpStream::connect(&addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        writer
            .write_all(
                b"{\"network\": \"tiny\", \"profile\": \"sparse\", \"seed\": 3}\n\
                  {\"network\": \"tiny\", \"arrival_cycle\": 4000}\n\
                  {\"network\": \"tiny\", \"arrival_cycle\": 8000, \"deadline_cycles\": 1}\n\n",
            )
            .expect("send batch");
        let mut response = String::new();
        use std::io::Read as _;
        BufReader::new(stream)
            .read_to_string(&mut response)
            .expect("read response");
        let _ = child.wait();
        assert!(!response.is_empty(), "--threads {threads}");
        responses.push((threads, response));
    }
    let (_, base) = &responses[0];
    assert!(base.contains("\"shed\":true"), "response: {base}");
    for (threads, response) in &responses[1..] {
        assert_eq!(response, base, "--threads {threads} response differs");
    }
}

/// Protocol hardening: an oversized request line is rejected before any
/// unbounded buffering — one-line stderr, exit 2 on stdin.
#[test]
fn oversized_request_lines_exit_nonzero() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mocha-sim"))
        .args(["serve"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mocha-sim serve");
    let huge = vec![b'x'; 80 * 1024];
    let mut stdin = child.stdin.take().expect("stdin");
    // The server may cut the pipe as soon as the cap trips; ignore EPIPE.
    let _ = stdin.write_all(&huge);
    let _ = stdin.write_all(b"\n");
    drop(stdin);
    let out = child.wait_with_output().expect("wait");
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("exceeds"), "stderr: {err}");
    assert_eq!(err.lines().count(), 1, "stderr: {err}");
}

/// CRLF and whitespace-only lines terminate a batch exactly like a bare
/// blank line (clients on other platforms speak the same protocol).
#[test]
fn crlf_and_whitespace_lines_terminate_batches() {
    for terminator in ["\r\n", "   \n", "\t\r\n"] {
        let mut child = Command::new(env!("CARGO_BIN_EXE_mocha-sim"))
            .args(["serve"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn mocha-sim serve");
        let batch = format!(
            "{}\r\n{}",
            "{\"network\": \"tiny\", \"seed\": 3}", terminator
        );
        child
            .stdin
            .take()
            .expect("stdin")
            .write_all(batch.as_bytes())
            .expect("write batch");
        let out = child.wait_with_output().expect("wait");
        assert!(out.status.success(), "stderr: {}", stderr(&out));
        let text = stdout(&out);
        assert_eq!(
            text.lines().count(),
            2,
            "terminator {terminator:?}: 1 job report + summary:\n{text}"
        );
    }
}

/// Bad `--shed-policy` and `--slo` values keep the one-line exit-2
/// contract on both serve modes.
#[test]
fn bad_shed_policies_exit_nonzero() {
    for args in [
        &["serve", "--shed-policy", "bogus"][..],
        &["serve", "--shed-policy", "queue="][..],
        &["serve", "--shed-policy", "queue=x"][..],
        &["serve", "--slo", "soon"][..],
        &["serve", "--open-loop", "--shed-policy", "bogus"][..],
        &["serve", "--open-loop", "--load", "-2"][..],
        &["serve", "--open-loop", "--tenants", "0"][..],
        &[
            "serve",
            "--open-loop",
            "--trace",
            "/nonexistent/trace.jsonl",
        ][..],
    ] {
        let out = mocha_sim(args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
        assert_eq!(
            stderr(&out).lines().count(),
            1,
            "args: {args:?} stderr: {}",
            stderr(&out)
        );
        assert!(stdout(&out).is_empty(), "args: {args:?}");
    }
}

/// `serve --open-loop --json` joins the determinism matrix: byte-identical
/// reports at `--threads 1`, `2`, `8`, and a generated trace replayed from
/// a file reproduces the generated run exactly.
#[test]
fn serve_open_loop_is_byte_identical_across_thread_counts_and_replay() {
    let base_args = [
        "serve",
        "--open-loop",
        "--requests",
        "3000",
        "--tenants",
        "120",
        "--load",
        "3.0",
        "--seed",
        "11",
        "--slo",
        "400000",
        "--shed-policy",
        "deadline",
        "--json",
    ];
    let mut runs = Vec::new();
    for threads in ["1", "2", "8"] {
        let mut args = base_args.to_vec();
        args.extend(["--threads", threads]);
        let out = mocha_sim(&args);
        assert!(
            out.status.success(),
            "--threads {threads} stderr: {}",
            stderr(&out)
        );
        runs.push((threads, stdout(&out)));
    }
    let (_, base) = &runs[0];
    let report = mocha_json::parse(base.trim()).expect("report JSON");
    assert!(
        report.get("shed").and_then(|v| v.as_u64()).unwrap_or(0) > 0,
        "load 3.0 must shed: {base}"
    );
    for (threads, run) in &runs[1..] {
        assert_eq!(run, base, "--threads {threads} open-loop report differs");
    }

    // Replaying the same trace from a file reproduces the generated run.
    let trace_cfg = mocha::serve::traffic::OpenLoopConfig {
        requests: 3000,
        tenants: 120,
        load: 3.0,
        seed: 11,
        mix: mocha::runtime::Mix::Quick,
        slo: Some(400_000),
    };
    let trace = mocha::serve::traffic::generate(&trace_cfg);
    let path = std::env::temp_dir().join("mocha_openloop_replay_e2e.jsonl");
    std::fs::write(&path, mocha::serve::traffic::to_jsonl(&trace)).expect("write trace");
    let out = mocha_sim(&[
        "serve",
        "--open-loop",
        "--trace",
        path.to_str().unwrap(),
        "--slo",
        "400000",
        "--shed-policy",
        "deadline",
        "--json",
    ]);
    let _ = std::fs::remove_file(&path);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert_eq!(stdout(&out), *base, "replayed trace must reproduce the run");
}

/// Drops the `cache.*` counter lines from an obs stream — the only delta a
/// cache-enabled run is allowed to introduce.
fn strip_cache_lines(jsonl: &str) -> String {
    jsonl
        .lines()
        .filter(|l| !l.contains("\"cache."))
        .map(|l| format!("{l}\n"))
        .collect()
}

/// The determinism matrix extended to the morph-decision cache: `runtime
/// --cache` must reproduce the uncached JSON report byte-for-byte at
/// `--threads 1`, `2`, `8`, the obs stream may differ only in its `cache.*`
/// counter lines, and the cache-enabled stream itself is byte-identical at
/// every worker count.
#[test]
fn cached_runtime_is_byte_identical_to_uncached_across_thread_counts() {
    let dir = std::env::temp_dir();
    let base_args = [
        "runtime", "--jobs", "4", "--load", "2.5", "--seed", "11", "--json",
    ];

    let obs = dir.join("mocha_cache_e2e_off.jsonl");
    let mut args = base_args.to_vec();
    args.extend(["--obs", obs.to_str().unwrap()]);
    let out = mocha_sim(&args);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let off_report = stdout(&out);
    let off_obs = std::fs::read_to_string(&obs).expect("obs file written");
    let _ = std::fs::remove_file(&obs);
    assert!(
        !off_obs.contains("\"cache."),
        "uncached run must record no cache counters"
    );

    let mut cached_streams = Vec::new();
    for threads in ["1", "2", "8"] {
        let obs = dir.join(format!("mocha_cache_e2e_on_{threads}.jsonl"));
        let mut args = base_args.to_vec();
        args.extend([
            "--cache",
            "--threads",
            threads,
            "--obs",
            obs.to_str().unwrap(),
        ]);
        let out = mocha_sim(&args);
        assert!(
            out.status.success(),
            "--threads {threads} stderr: {}",
            stderr(&out)
        );
        assert_eq!(
            stdout(&out),
            off_report,
            "--threads {threads} cached report differs from uncached"
        );
        let on_obs = std::fs::read_to_string(&obs).expect("obs file written");
        let _ = std::fs::remove_file(&obs);
        assert!(
            on_obs.contains("\"cache."),
            "--threads {threads}: cached run recorded no cache counters"
        );
        assert_eq!(
            strip_cache_lines(&on_obs),
            off_obs,
            "--threads {threads} obs stream differs beyond cache.* lines"
        );
        cached_streams.push((threads, on_obs));
    }
    let (_, base) = &cached_streams[0];
    for (threads, obs) in &cached_streams[1..] {
        assert_eq!(
            obs, base,
            "--threads {threads} cached obs stream differs from --threads 1"
        );
    }
}

/// `repro r1/r2/r3 --cache` replays the uncached experiment tables
/// byte-for-byte at every thread count: memoized morph decisions can never
/// leak into a result.
#[test]
fn cached_repro_tables_match_uncached_across_thread_counts() {
    for id in ["r1", "r2", "r3"] {
        let base = mocha_sim(&["repro", id, "--quick", "--threads", "2"]);
        assert!(base.status.success(), "{id} stderr: {}", stderr(&base));
        let base_table = stdout(&base);
        for threads in ["1", "2", "8"] {
            let out = mocha_sim(&["repro", id, "--quick", "--threads", threads, "--cache"]);
            assert!(
                out.status.success(),
                "{id} --threads {threads} stderr: {}",
                stderr(&out)
            );
            assert_eq!(
                stdout(&out),
                base_table,
                "{id} --threads {threads} cached table differs from uncached"
            );
        }
    }
}

/// `serve --open-loop --cache` joins the matrix too: the calibrated report
/// is byte-identical to the uncached run at every thread count.
#[test]
fn cached_open_loop_report_matches_uncached_across_thread_counts() {
    let base_args = [
        "serve",
        "--open-loop",
        "--requests",
        "2000",
        "--tenants",
        "100",
        "--load",
        "3.0",
        "--seed",
        "7",
        "--slo",
        "400000",
        "--shed-policy",
        "deadline",
        "--json",
    ];
    let base = mocha_sim(&base_args);
    assert!(base.status.success(), "stderr: {}", stderr(&base));
    let base_report = stdout(&base);
    for threads in ["1", "2", "8"] {
        let mut args = base_args.to_vec();
        args.extend(["--cache", "--threads", threads]);
        let out = mocha_sim(&args);
        assert!(
            out.status.success(),
            "--threads {threads} stderr: {}",
            stderr(&out)
        );
        assert_eq!(
            stdout(&out),
            base_report,
            "--threads {threads} cached open-loop report differs"
        );
    }
}

/// `serve --tcp --cache` cold vs warm: the first batch fills the cache, an
/// identical second batch hits it, and every `stats` snapshot reconciles
/// `cache.hit + cache.miss == cache.decisions` — while both batches answer
/// with byte-identical job reports.
#[test]
fn serve_tcp_cache_stats_reconcile_cold_and_warm() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mocha-sim"))
        .args(["serve", "--tcp", "127.0.0.1:0", "--cache"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mocha-sim serve --tcp --cache");
    let mut child_err = BufReader::new(child.stderr.take().expect("stderr"));
    let mut line = String::new();
    child_err.read_line(&mut line).expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();

    let batch = b"{\"network\": \"tiny\", \"profile\": \"sparse\", \"seed\": 3}\n\
                  {\"network\": \"tiny\", \"arrival_cycle\": 4000}\n\n";
    let send_batch = || {
        let stream = std::net::TcpStream::connect(&addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        writer.write_all(batch).expect("send batch");
        let mut lines = Vec::new();
        for l in BufReader::new(stream).lines() {
            lines.push(l.expect("read response"));
        }
        lines
    };
    let stats = || {
        let stream = std::net::TcpStream::connect(&addr).expect("connect stats");
        let mut writer = stream.try_clone().expect("clone");
        writer.write_all(b"stats\n").expect("send stats");
        let mut reader = BufReader::new(stream);
        let mut snap_line = String::new();
        reader.read_line(&mut snap_line).expect("read snapshot");
        mocha_json::parse(snap_line.trim()).expect("snapshot is JSON")
    };
    let cache_counters = |snap: &mocha_json::Value| -> (u64, u64, u64) {
        let counters = snap.get("counters").expect("counters block");
        let c = |k: &str| counters.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
        (c("cache.hit"), c("cache.miss"), c("cache.decisions"))
    };

    // Cold batch: every decision is a miss, but the counters reconcile.
    let cold_lines = send_batch();
    assert_eq!(
        cold_lines.len(),
        3,
        "2 job reports + summary: {cold_lines:?}"
    );
    let cold_snap = stats();
    let (h1, m1, d1) = cache_counters(&cold_snap);
    assert!(
        d1 > 0,
        "cold batch never consulted the cache: {cold_snap:?}"
    );
    assert_eq!(h1 + m1, d1, "cold snapshot: hit + miss != decisions");

    // Warm batch: identical requests replay identical reports via the
    // shared cache, hits grow, and the snapshot still reconciles.
    let warm_lines = send_batch();
    let warm_snap = stats();
    child.kill().expect("kill server");
    let _ = child.wait();
    assert_eq!(
        warm_lines, cold_lines,
        "warm batch answered differently from the cold batch"
    );
    let (h2, m2, d2) = cache_counters(&warm_snap);
    assert_eq!(h2 + m2, d2, "warm snapshot: hit + miss != decisions");
    assert!(d2 > d1, "warm batch never consulted the cache");
    assert!(h2 > h1, "warm batch did not hit the shared decision cache");
}

/// Malformed `--metrics-window` specs and broken `--metrics-window` /
/// `--metrics` pairings hit the one-line exit-2 contract on every command
/// that accepts them, before any work starts.
#[test]
fn malformed_metrics_flags_exit_nonzero() {
    // Bad window specs on every accepting command.
    for spec in [
        "bogus",
        "0",
        "tumbling:",
        "rolling:100",
        "rolling:100/0",
        "rolling:100/200",
        "rolling:100/33",
    ] {
        for cmd in [
            &[
                "runtime",
                "--jobs",
                "1",
                "--metrics",
                "/tmp/m.jsonl",
                "--metrics-window",
            ][..],
            &["serve", "--metrics-window"][..],
            &[
                "serve",
                "--open-loop",
                "--requests",
                "1",
                "--metrics",
                "/tmp/m.jsonl",
                "--metrics-window",
            ][..],
        ] {
            let mut args = cmd.to_vec();
            args.push(spec);
            let out = mocha_sim(&args);
            assert_eq!(out.status.code(), Some(2), "args: {args:?}");
            let err = stderr(&out);
            assert_eq!(err.lines().count(), 1, "args: {args:?} stderr: {err}");
            assert!(
                err.contains("bad window spec"),
                "args: {args:?} stderr: {err}"
            );
            assert!(stdout(&out).is_empty(), "args: {args:?}");
        }
    }
    // Export flags come as a pair; `-` is reserved for `--obs`.
    for args in [
        &["runtime", "--jobs", "1", "--metrics-window", "1000"][..],
        &["runtime", "--jobs", "1", "--metrics", "/tmp/m.jsonl"][..],
        &[
            "runtime",
            "--jobs",
            "1",
            "--metrics-window",
            "1000",
            "--metrics",
            "-",
        ][..],
        &["serve", "--open-loop", "--metrics-window", "1000"][..],
        &["serve", "--open-loop", "--metrics", "/tmp/m.jsonl"][..],
    ] {
        let out = mocha_sim(args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
        assert_eq!(
            stderr(&out).lines().count(),
            1,
            "args: {args:?} stderr: {}",
            stderr(&out)
        );
        assert!(stdout(&out).is_empty(), "args: {args:?}");
    }
}

/// `runtime --metrics` exports the windowed JSONL stream: tagged lines,
/// a `window_spec` header, per-window counters and histogram summaries —
/// byte-identical across two identical seeded runs.
#[test]
fn runtime_metrics_export_is_deterministic_and_well_formed() {
    let dir = std::env::temp_dir();
    let mut exports = Vec::new();
    for i in 0..2 {
        let f = dir.join(format!("mocha_metrics_e2e_{i}.jsonl"));
        let out = mocha_sim(&[
            "runtime",
            "--jobs",
            "4",
            "--load",
            "2.5",
            "--seed",
            "11",
            "--metrics-window",
            "200000",
            "--metrics",
            f.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "stderr: {}", stderr(&out));
        exports.push(std::fs::read_to_string(&f).expect("metrics file written"));
        let _ = std::fs::remove_file(&f);
    }
    assert_eq!(exports[0], exports[1], "metrics export must be byte-stable");
    let mut kinds = std::collections::BTreeSet::new();
    for line in exports[0].lines() {
        let v = mocha_json::parse(line).expect("every metrics line is JSON");
        kinds.insert(
            v.get("event")
                .and_then(|e| e.as_str())
                .unwrap_or_else(|| panic!("untagged metrics line: {line}"))
                .to_string(),
        );
    }
    for kind in ["window_spec", "window", "whist"] {
        assert!(kinds.contains(kind), "kinds: {kinds:?}");
    }

    // `trace summary` distils the export into the per-window tail table.
    let obs = dir.join("mocha_metrics_e2e_sum.jsonl");
    let metrics = dir.join("mocha_metrics_e2e_sum.metrics.jsonl");
    let out = mocha_sim(&[
        "runtime",
        "--jobs",
        "4",
        "--load",
        "2.5",
        "--seed",
        "11",
        "--obs",
        obs.to_str().unwrap(),
        "--metrics-window",
        "200000",
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let mut joined = std::fs::read_to_string(&obs).expect("obs written");
    joined.push_str(&std::fs::read_to_string(&metrics).expect("metrics written"));
    let both = dir.join("mocha_metrics_e2e_sum.both.jsonl");
    std::fs::write(&both, &joined).expect("write joined stream");
    let summary = mocha_sim(&["trace", "summary", both.to_str().unwrap()]);
    assert!(summary.status.success(), "stderr: {}", stderr(&summary));
    let text = stdout(&summary);
    assert!(text.contains("windowed:"), "summary:\n{text}");
    assert!(text.contains("p99"), "summary:\n{text}");
    for f in [obs, metrics, both] {
        let _ = std::fs::remove_file(f);
    }
}

/// Satellite: with a shed policy active, the `stats` snapshot's `hists`
/// block carries nearest-rank percentiles for the admission-control
/// histograms (queue depth at arrival, shed slack).
#[test]
fn serve_stats_hists_carry_admission_percentiles() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mocha-sim"))
        .args(["serve", "--shed-policy", "deadline", "--slo", "400000"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mocha-sim serve");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(
            b"{\"network\": \"tiny\", \"profile\": \"sparse\", \"seed\": 3}\n\
              {\"network\": \"tiny\", \"arrival_cycle\": 4000}\n\
              {\"network\": \"tiny\", \"arrival_cycle\": 8000, \"deadline_cycles\": 1}\n\n\
              stats\n",
        )
        .expect("write batch + stats query");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let snap_line = text.lines().last().expect("stats line");
    let snap = mocha_json::parse(snap_line).expect("snapshot is JSON");
    let hists = snap.get("hists").expect("hists block");
    for name in ["serve.queue_depth", "serve.shed_slack_cycles"] {
        let h = hists
            .get(name)
            .unwrap_or_else(|| panic!("missing {name} in {hists:?}"));
        for key in ["count", "p50", "p95", "p99"] {
            assert!(h.get(key).is_some(), "{name} missing {key}: {h:?}");
        }
        assert!(
            h.get("count").and_then(|v| v.as_u64()).unwrap_or(0) > 0,
            "{name} recorded no samples: {h:?}"
        );
    }
}

/// The live `metrics` query over stdin: after a served batch, the response
/// is a Prometheus-style exposition followed by one JSON snapshot line,
/// and the snapshot's counters reconcile with the batch.
#[test]
fn serve_stdin_metrics_query_returns_exposition_and_snapshot() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mocha-sim"))
        .args([
            "serve",
            "--shed-policy",
            "deadline",
            "--slo",
            "400000",
            "--metrics-window",
            "100000",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mocha-sim serve");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(
            b"{\"network\": \"tiny\", \"profile\": \"sparse\", \"seed\": 3}\n\
              {\"network\": \"tiny\", \"arrival_cycle\": 4000}\n\
              {\"network\": \"tiny\", \"arrival_cycle\": 8000, \"deadline_cycles\": 1}\n\n\
              metrics\n",
        )
        .expect("write batch + metrics query");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.lines().any(|l| l.starts_with("# TYPE mocha_")),
        "no exposition TYPE lines:\n{text}"
    );
    assert!(
        text.contains("mocha_serve_requests"),
        "missing serve.requests metric:\n{text}"
    );
    let snap_line = text
        .lines()
        .filter(|l| l.starts_with('{'))
        .find(|l| {
            mocha_json::parse(l)
                .ok()
                .and_then(|v| v.get("metrics").and_then(|m| m.as_bool()))
                == Some(true)
        })
        .unwrap_or_else(|| panic!("no snapshot line in:\n{text}"));
    let snap = mocha_json::parse(snap_line).expect("snapshot is JSON");
    let counters = snap
        .get("counters")
        .and_then(|v| v.as_arr())
        .expect("counters");
    let total: u64 = counters
        .iter()
        .filter(|c| c.get("name").and_then(|n| n.as_str()) == Some("serve.requests"))
        .filter_map(|c| c.get("value").and_then(|v| v.as_u64()))
        .sum();
    assert_eq!(total, 3, "every request lands in a window: {snap_line}");
    let slo = snap.get("slo").expect("slo block (deadline policy active)");
    assert!(slo.get("burn_slow").is_some(), "slo block: {slo:?}");

    // Without `--metrics-window` the query answers with a one-line error
    // instead of an exposition — and the server stays up.
    let mut child = Command::new(env!("CARGO_BIN_EXE_mocha-sim"))
        .args(["serve"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mocha-sim serve");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(b"metrics\n{\"network\": \"tiny\", \"seed\": 3}\n\n")
        .expect("write query + batch");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let first = text.lines().next().expect("error line");
    let err = mocha_json::parse(first).expect("error line is JSON");
    assert!(
        err.get("error")
            .and_then(|v| v.as_str())
            .is_some_and(|m| m.contains("--metrics-window")),
        "error line: {first}"
    );
    assert!(text.lines().count() > 1, "batch still served:\n{text}");
}

/// `repro r3` — the open-loop serving sweep — is byte-identical across
/// thread counts and carries the headline shedding-beats-queueing note.
#[test]
fn repro_r3_is_byte_identical_across_thread_counts() {
    let mut tables = Vec::new();
    for threads in ["1", "2", "8"] {
        let out = mocha_sim(&["repro", "r3", "--quick", "--threads", threads]);
        assert!(
            out.status.success(),
            "--threads {threads} stderr: {}",
            stderr(&out)
        );
        tables.push((threads, stdout(&out)));
    }
    let (_, base) = &tables[0];
    assert!(
        base.contains("beats unbounded queueing on goodput AND p99"),
        "headline claim missing:\n{base}"
    );
    assert!(
        base.contains("fires before the goodput knee"),
        "windowed burn-rate claim missing:\n{base}"
    );
    for (threads, table) in &tables[1..] {
        assert_eq!(table, base, "--threads {threads} r3 table differs");
    }
}

/// Malformed `--fleet` / `--route` specs follow the scriptable error
/// contract everywhere they are accepted: exit code 2, exactly one stderr
/// line, nothing on stdout — the same shape as `--faults`.
#[test]
fn malformed_fleet_specs_exit_nonzero() {
    for spec in [
        "",
        "/",
        "preset=quad/",
        "preset=warp",
        "grid",
        "grid=fast",
        "grid=0",
        "grid=65",
        "count=0",
        "banks=4,bogus=1",
        "count=65",          // single instance past MAX_SHARDS
        "count=40/count=40", // total past MAX_SHARDS
    ] {
        for cmd in [
            &["fleet", "--fleet"][..],
            &["fleet", "--open-loop", "--requests", "10", "--fleet"][..],
            &["serve", "--open-loop", "--requests", "10", "--fleet"][..],
        ] {
            let mut args = cmd.to_vec();
            args.push(spec);
            let out = mocha_sim(&args);
            assert_eq!(out.status.code(), Some(2), "args: {args:?}");
            assert_eq!(
                stderr(&out).lines().count(),
                1,
                "args: {args:?} stderr: {}",
                stderr(&out)
            );
            assert!(stdout(&out).is_empty(), "args: {args:?}");
        }
    }
    for route in ["", "fastest", "p3c", "roundrobin"] {
        for cmd in [
            &["fleet", "--route"][..],
            &["fleet", "--open-loop", "--requests", "10", "--route"][..],
            &["serve", "--open-loop", "--requests", "10", "--route"][..],
        ] {
            let mut args = cmd.to_vec();
            args.push(route);
            let out = mocha_sim(&args);
            assert_eq!(out.status.code(), Some(2), "args: {args:?}");
            assert_eq!(stderr(&out).lines().count(), 1, "args: {args:?}");
            assert!(stdout(&out).is_empty(), "args: {args:?}");
        }
    }
}

/// The fleet property pair, end to end: routing is deterministic (the JSON
/// report and obs stream replay byte-identical at `--threads 1`, `2`, `8`)
/// and conserves jobs — every admitted request is accounted for in
/// per-shard tallies, with migrations balancing out fleet-wide.
#[test]
fn fleet_open_loop_conserves_jobs_and_is_byte_identical_across_thread_counts() {
    let dir = std::env::temp_dir();
    let mut runs = Vec::new();
    for threads in ["1", "2", "8"] {
        let obs = dir.join(format!("mocha_fleet_e2e_{threads}.jsonl"));
        let out = mocha_sim(&[
            "fleet",
            "--open-loop",
            "--fleet",
            "preset=quad/preset=mocha,count=2",
            "--route",
            "p2c",
            "--requests",
            "2000",
            "--tenants",
            "100",
            "--load",
            "3.0",
            "--seed",
            "11",
            "--slo",
            "2000000",
            "--faults",
            "rate=0.5,seed=9",
            "--json",
            "--threads",
            threads,
            "--obs",
            obs.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "--threads {threads} stderr: {}",
            stderr(&out)
        );
        let stream = std::fs::read_to_string(&obs).expect("obs stream");
        let _ = std::fs::remove_file(&obs);
        runs.push((threads, stdout(&out), stream));
    }
    let (_, base_report, base_stream) = &runs[0];
    for (threads, report, stream) in &runs[1..] {
        assert_eq!(report, base_report, "--threads {threads} report differs");
        assert_eq!(
            stream, base_stream,
            "--threads {threads} obs stream differs"
        );
    }

    let report = mocha_json::parse(base_report.trim()).expect("report JSON");
    let field = |v: &mocha_json::Value, k: &str| {
        v.get(k)
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("missing {k}: {base_report}"))
    };
    let admitted = field(&report, "admitted");
    let shards = match report.get("shards") {
        Some(mocha_json::Value::Arr(shards)) => shards,
        other => panic!("shards must be an array, got {other:?}"),
    };
    assert_eq!(shards.len(), 3, "spec names three shards");
    let mut routed = 0;
    let mut settled = 0;
    let mut reb_in = 0;
    let mut reb_out = 0;
    for s in shards {
        routed += field(s, "routed");
        settled +=
            field(s, "shed") + field(s, "completed") + field(s, "failed") + field(s, "in_flight");
        reb_in += field(s, "rebalanced_in");
        reb_out += field(s, "rebalanced_out");
    }
    // Fleet-wide conservation: the router routes every offered request, a
    // migrated job exits one shard's ledger via rebalanced_out and enters
    // another's via rebalanced_in, so summing the per-shard identities the
    // migration terms cancel and every request settles exactly once.
    assert_eq!(routed, field(&report, "offered"), "router loses requests");
    assert_eq!(
        admitted + field(&report, "shed"),
        settled,
        "admitted jobs leak: {base_report}"
    );
    assert_eq!(reb_in, reb_out, "migrations must balance fleet-wide");
    assert!(
        field(&report, "rebalanced") > 0,
        "quarantines at rate=0.5 must trigger re-balancing: {base_report}"
    );
}

/// The fleet-of-1 differential at the binary level: with zero faults,
/// `fleet` over a single default shard reproduces the single-fabric
/// `runtime` obs stream byte-for-byte once its `fleet.*` telemetry lines
/// are stripped — the router provably adds telemetry and nothing else.
#[test]
fn fleet_of_one_with_zero_faults_matches_runtime_byte_for_byte() {
    let dir = std::env::temp_dir();
    let solo_obs = dir.join("mocha_fleet1_solo_e2e.jsonl");
    let fleet_obs = dir.join("mocha_fleet1_fleet_e2e.jsonl");
    let solo = mocha_sim(&[
        "runtime",
        "--jobs",
        "6",
        "--load",
        "2.0",
        "--seed",
        "17",
        "--obs",
        solo_obs.to_str().unwrap(),
    ]);
    assert!(solo.status.success(), "stderr: {}", stderr(&solo));
    let fleet = mocha_sim(&[
        "fleet",
        "--jobs",
        "6",
        "--load",
        "2.0",
        "--seed",
        "17",
        "--obs",
        fleet_obs.to_str().unwrap(),
    ]);
    assert!(fleet.status.success(), "stderr: {}", stderr(&fleet));
    let solo_stream = std::fs::read_to_string(&solo_obs).expect("solo stream");
    let fleet_stream = std::fs::read_to_string(&fleet_obs).expect("fleet stream");
    let _ = std::fs::remove_file(&solo_obs);
    let _ = std::fs::remove_file(&fleet_obs);
    assert!(
        fleet_stream.lines().any(|l| l.contains("\"fleet")),
        "fleet run must record fleet.* telemetry"
    );
    let stripped: String = fleet_stream
        .lines()
        .filter(|l| !l.contains("\"fleet"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(
        stripped, solo_stream,
        "fleet-of-1 must wrap runtime byte-for-byte beyond fleet lines"
    );
}

/// `repro r5` — the fleet degradation sweep — is byte-identical across
/// thread counts and carries its routing and re-balancing claims.
#[test]
fn repro_r5_is_byte_identical_across_thread_counts() {
    let mut tables = Vec::new();
    for threads in ["1", "2", "8"] {
        let out = mocha_sim(&["repro", "r5", "--quick", "--threads", threads]);
        assert!(
            out.status.success(),
            "--threads {threads} stderr: {}",
            stderr(&out)
        );
        tables.push((threads, stdout(&out)));
    }
    let (_, base) = &tables[0];
    assert!(
        base.contains("p2c beats round-robin and locality beats round-robin"),
        "headline claim missing:\n{base}"
    );
    assert!(
        base.contains("re-balancing is visible at every nonzero rate"),
        "re-balancing claim missing:\n{base}"
    );
    assert!(
        base.contains("amplifies the morph-decision cache at fleet scale"),
        "cache amplification claim missing:\n{base}"
    );
    for (threads, table) in &tables[1..] {
        assert_eq!(table, base, "--threads {threads} r5 table differs");
    }
}
