//! [`ToJson`]/[`FromJson`] conversion traits and implementations for the
//! standard types the workspace serializes.

use crate::{JsonError, Value};

/// Converts a value into a JSON [`Value`].
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Value;
}

/// Builds a value back from a JSON [`Value`].
pub trait FromJson: Sized {
    /// Parses `self` out of `v`, with a descriptive error on mismatch.
    fn from_json(v: &Value) -> Result<Self, JsonError>;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_bool()
            .ok_or_else(|| JsonError::invalid("expected bool"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::invalid("expected string"))
    }
}

macro_rules! impl_json_int {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                let n = v.as_f64().ok_or_else(|| JsonError::invalid("expected number"))?;
                if n.fract() != 0.0 {
                    return Err(JsonError::invalid("expected integer"));
                }
                if n < <$ty>::MIN as f64 || n > <$ty>::MAX as f64 {
                    return Err(JsonError::invalid("integer out of range"));
                }
                Ok(n as $ty)
            }
        }
    )+};
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_f64()
            .ok_or_else(|| JsonError::invalid("expected number"))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Num(*self as f64)
    }
}

impl FromJson for f32 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(f64::from_json(v)? as f32)
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_arr()
            .ok_or_else(|| JsonError::invalid("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_json(),
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Value {
        (*self).to_json()
    }
}
