//! Compact and pretty JSON printers.

use crate::Value;
use std::fmt::Write;

pub(crate) fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(*n, out),
        Value::Str(s) => write_str(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Obj(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

pub(crate) fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = |out: &mut String, n: usize| {
        for _ in 0..n {
            out.push_str("  ");
        }
    };
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            pad(out, indent);
            out.push(']');
        }
        Value::Obj(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_str(k, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            pad(out, indent);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Writes a number: integers without a fractional part, everything else via
/// the shortest float formatting Rust offers.
fn write_num(n: f64, out: &mut String) {
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 9.0e15 {
        write!(out, "{}", n as i64).unwrap();
    } else if n.is_finite() {
        write!(out, "{n}").unwrap();
    } else {
        // JSON has no Inf/NaN; emit null like serde_json's lossy mode.
        out.push_str("null");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
