//! Recursive-descent JSON parser.

use crate::Value;
use std::collections::BTreeMap;
use std::fmt;

/// Parse or conversion failure, with a short description and (for parse
/// errors) the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
    /// Byte offset of the failure for parse errors, `None` for conversion
    /// errors.
    pub offset: Option<usize>,
}

impl JsonError {
    pub(crate) fn at(msg: impl Into<String>, offset: usize) -> Self {
        Self {
            msg: msg.into(),
            offset: Some(offset),
        }
    }

    /// A missing-field conversion error.
    pub fn missing(path: &str) -> Self {
        Self {
            msg: format!("missing field {path}"),
            offset: None,
        }
    }

    /// A type-mismatch / invalid-value conversion error.
    pub fn invalid(msg: impl Into<String>) -> Self {
        Self {
            msg: msg.into(),
            offset: None,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} at byte {o}", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::at("trailing characters", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(format!("expected {:?}", b as char), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(JsonError::at(format!("expected {lit}"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(JsonError::at("expected a JSON value", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(JsonError::at("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(JsonError::at("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::at("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::at("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| JsonError::at("short \\u escape", self.pos))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| JsonError::at("bad \\u escape", self.pos))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(JsonError::at("unknown escape", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged because the input is a &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        // Enforce the JSON grammar before falling back to Rust's (more
        // lenient) f64 parser: no leading zeros ("01"), a digit required
        // after the decimal point ("1.") and after the exponent marker.
        // Every internal producer prints through f64 Display, which never
        // emits these shapes, so strictness costs nothing on round-trips.
        let digits = text.strip_prefix('-').unwrap_or(text);
        let int_part = &digits[..digits.find(['.', 'e', 'E']).unwrap_or(digits.len())];
        let grammatical = match int_part.len() {
            0 => false,
            1 => true,
            _ => !int_part.starts_with('0'),
        } && match digits.split_once('.') {
            None => true,
            Some((_, frac)) => frac.starts_with(|c: char| c.is_ascii_digit()),
        };
        if !grammatical {
            return Err(JsonError::at(format!("bad number {text:?}"), start));
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| JsonError::at(format!("bad number {text:?}"), start))
    }
}
