//! # mocha-json
//!
//! A deliberately small JSON implementation: a [`Value`] tree, a
//! recursive-descent parser, compact and pretty printers, and the
//! [`ToJson`]/[`FromJson`] traits the workspace types implement for config
//! files, CLI `--json` output and the `mocha-sim serve` JSON-lines protocol.
//!
//! The workspace builds offline with no registry access, so this crate
//! stands in for serde/serde_json. It supports exactly the JSON the
//! simulator emits and consumes: objects, arrays, strings, numbers, bools
//! and null, with `\uXXXX`-free string escapes (`\" \\ \/ \n \t \r \b \f`
//! plus basic `\u` decoding for completeness).

#![warn(missing_docs)]

mod parse;
mod print;
mod traits;

pub use parse::{parse, JsonError};
pub use traits::{FromJson, ToJson};

use std::collections::BTreeMap;

/// A JSON value. Objects use a `BTreeMap` so printing is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; integers up to 2^53 round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with deterministically ordered keys.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// An empty object.
    pub fn object() -> Value {
        Value::Obj(BTreeMap::new())
    }

    /// Inserts a key into an object value (panics on non-objects) and
    /// returns `self` for chaining.
    pub fn with(mut self, key: &str, v: impl ToJson) -> Value {
        match &mut self {
            Value::Obj(map) => {
                map.insert(key.to_string(), v.to_json());
            }
            _ => panic!("Value::with on non-object"),
        }
        self
    }

    /// Member lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as f64 if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as u64 if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as usize if it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The value as bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as &str.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut s = String::new();
        print::write_compact(self, &mut s);
        s
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut s = String::new();
        print::write_pretty(self, 0, &mut s);
        s
    }
}

/// Builds an object [`Value`] from `"key" => expr` pairs, where each value
/// expression implements [`ToJson`].
#[macro_export]
macro_rules! jobj {
    ( $( $k:literal => $v:expr ),* $(,)? ) => {{
        let mut map = std::collections::BTreeMap::new();
        $( map.insert($k.to_string(), $crate::ToJson::to_json(&$v)); )*
        $crate::Value::Obj(map)
    }};
}

/// Implements [`ToJson`]/[`FromJson`] for a named-field struct: serialized
/// as an object with one member per listed field. Every field type must
/// itself implement the traits.
#[macro_export]
macro_rules! impl_json_struct {
    ( $ty:ty { $( $field:ident ),+ $(,)? } ) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Value {
                let mut map = std::collections::BTreeMap::new();
                $( map.insert(stringify!($field).to_string(), self.$field.to_json()); )+
                $crate::Value::Obj(map)
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Value) -> Result<Self, $crate::JsonError> {
                Ok(Self {
                    $( $field: $crate::FromJson::from_json(
                        v.get(stringify!($field)).ok_or_else(|| $crate::JsonError::missing(
                            concat!(stringify!($ty), ".", stringify!($field))))?,
                    )?, )+
                })
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for a unit-variant enum, serialized
/// as the given string literal per variant.
#[macro_export]
macro_rules! impl_json_unit_enum {
    ( $ty:ty { $( $variant:ident => $name:literal ),+ $(,)? } ) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Value {
                $crate::Value::Str(match self {
                    $( <$ty>::$variant => $name, )+
                }.to_string())
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Value) -> Result<Self, $crate::JsonError> {
                match v.as_str() {
                    $( Some($name) => Ok(<$ty>::$variant), )+
                    _ => Err($crate::JsonError::invalid(concat!("expected ", stringify!($ty), " tag"))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_roundtrip() {
        let text = r#"{"a": 1, "b": [true, null, "x\n"], "c": {"d": -2.5}}"#;
        let v = parse(text).unwrap();
        let back = parse(&v.to_string_compact()).unwrap();
        assert_eq!(v, back);
        let back = parse(&v.to_string_pretty()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n": 3, "s": "hi", "b": false, "a": [1,2]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn jobj_macro_builds_objects() {
        let v = jobj! { "x" => 1u64, "y" => "s", "z" => vec![1u64, 2] };
        assert_eq!(v.get("x").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("y").unwrap().as_str(), Some("s"));
        assert_eq!(v.get("z").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn struct_macro_roundtrips() {
        #[derive(Debug, PartialEq)]
        struct P {
            x: u64,
            y: f64,
        }
        impl_json_struct!(P { x, y });
        let p = P { x: 7, y: -1.25 };
        let v = p.to_json();
        assert_eq!(P::from_json(&v).unwrap(), p);
        assert!(P::from_json(&parse(r#"{"x": 7}"#).unwrap()).is_err());
    }

    #[test]
    fn unit_enum_macro_roundtrips() {
        #[derive(Debug, PartialEq)]
        enum E {
            A,
            B,
        }
        impl_json_unit_enum!(E { A => "a", B => "b" });
        assert_eq!(E::from_json(&E::A.to_json()).unwrap(), E::A);
        assert_eq!(E::from_json(&Value::Str("b".into())).unwrap(), E::B);
        assert!(E::from_json(&Value::Str("c".into())).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "tru", "\"unterminated", "{\"a\" 1}", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn numbers_roundtrip_precisely_enough() {
        for n in [0.0, 1.0, -1.0, 0.5, 1e9, 123456789.0, -3.25] {
            let v = parse(&Value::Num(n).to_string_compact()).unwrap();
            assert_eq!(v.as_f64(), Some(n));
        }
    }
}
