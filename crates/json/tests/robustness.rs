//! Fuzz-ish robustness tests for the JSON parser: truncations, junk bytes
//! and seeded random mutations of well-formed documents. The contract:
//! [`mocha_json::parse`] never panics — every rejection is a [`JsonError`]
//! carrying a byte offset inside the input — and accept/reject is stable
//! (parsing the same text twice gives the same answer).
//!
//! `mocha-json` is dependency-free, so the test carries its own tiny
//! splitmix64 generator; every case reproduces from its printed seed.

use mocha_json::{parse, Value};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// splitmix64 — enough randomness for byte-level mutation, zero deps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A well-formed document exercising every value kind, nesting, escapes
/// and number shapes.
const SEED_DOC: &str = r#"{"event":"span","path":"job/0/group/conv1","start":0,"end":121852,
"nested":{"arr":[1,-2,3.5,1e3,-0.25,true,false,null,"s"],"esc":"a\"b\\c\/d\n\t\u0041"},
"big":18446744073709551615,"neg":-9007199254740993,"tiny":1.0e-308}"#;

fn parse_no_panic(text: &str, what: &str) -> Result<Value, mocha_json::JsonError> {
    catch_unwind(AssertUnwindSafe(|| parse(text)))
        .unwrap_or_else(|_| panic!("{what}: parse panicked on {text:?}"))
}

#[test]
fn every_prefix_of_a_real_document_errors_cleanly_or_parses() {
    let doc = SEED_DOC.replace('\n', " ");
    for cut in 0..doc.len() {
        let Some(prefix) = doc.get(..cut) else {
            continue;
        };
        if let Err(e) = parse_no_panic(prefix, "prefix") {
            if let Some(off) = e.offset {
                assert!(
                    off <= prefix.len(),
                    "cut {cut}: offset {off} beyond input len {}",
                    prefix.len()
                );
            }
        }
    }
}

#[test]
fn random_mutations_never_panic_and_are_deterministic() {
    let base = SEED_DOC.as_bytes();
    for seed in 0..2048u64 {
        let mut rng = Rng(seed);
        let mut bytes = base.to_vec();
        for _ in 0..=rng.below(4) {
            let i = rng.below(bytes.len());
            match rng.below(3) {
                0 => bytes[i] = (rng.next() & 0xFF) as u8,
                1 => {
                    bytes.remove(i);
                }
                _ => bytes.insert(i, (rng.next() & 0xFF) as u8),
            }
        }
        let Ok(text) = String::from_utf8(bytes) else {
            continue; // parse takes &str; invalid UTF-8 can't reach it
        };
        let first = parse_no_panic(&text, "mutation").is_ok();
        let second = parse_no_panic(&text, "mutation-again").is_ok();
        assert_eq!(first, second, "seed {seed}: accept/reject must be stable");
    }
}

#[test]
fn hostile_literals_are_rejected_not_panicked() {
    for junk in [
        "",
        " ",
        "{",
        "}",
        "[",
        "]",
        "{]",
        "[}",
        "{\"a\":}",
        "{\"a\":1,}",
        "[1,]",
        "[,1]",
        "{\"a\" 1}",
        "{1:2}",
        "tru",
        "truee",
        "nul",
        "+1",
        "01",
        ".5",
        "1.",
        "1e",
        "1e+",
        "-",
        "\"unterminated",
        "\"bad escape \\q\"",
        "\"bad unicode \\u12g4\"",
        "\"\\u12\"",
        "{\"a\":1}{\"b\":2}",
        "1 2",
        "\u{0}\u{1}\u{2}",
        "🦀",
    ] {
        let res = parse_no_panic(junk, "junk");
        assert!(res.is_err(), "{junk:?} should be rejected");
    }
}

#[test]
fn deep_nesting_is_handled_without_stack_overflow_or_panic() {
    // 64 levels parses fine…
    let ok = format!("{}1{}", "[".repeat(64), "]".repeat(64));
    assert!(parse_no_panic(&ok, "nest-64").is_ok());
    // …and pathological depth is either parsed or rejected — never a crash.
    // (Kept within the parser's documented recursion comfort zone times a
    // safety factor; a crash here is a DoS vector for the serve front-end.)
    let deep = format!("{}1{}", "[".repeat(1000), "]".repeat(1000));
    let _ = parse_no_panic(&deep, "nest-1000");
    let unclosed = "[".repeat(1000);
    let _ = parse_no_panic(&unclosed, "nest-unclosed");
}

#[test]
fn printer_output_always_reparses_to_the_same_value() {
    // Round-trip stability on the parts of the seed doc the parser accepts.
    let v = parse(&SEED_DOC.replace('\n', " ")).expect("seed doc parses");
    for text in [v.to_string_compact(), v.to_string_pretty()] {
        let back = parse(&text).expect("printed JSON reparses");
        assert_eq!(back, v);
    }
}
