//! # MOCHA — Morphable Locality and Compression Aware Architecture for CNNs
//!
//! A cycle-approximate, functionally bit-exact simulator of the MOCHA CNN
//! accelerator (Jafri, Hemani, Paul, Abbas — IPDPS 2017), including every
//! substrate it runs on and the prior-art baselines it is compared against.
//!
//! ## The design in one paragraph
//!
//! MOCHA is a CGRA-class accelerator (DRRA PE array + DiMArch distributed
//! scratchpad) with three differentiators: (i) hardware **compression** of
//! feature-map and kernel streams (ZRLE / bitmask-sparse), (ii) the
//! **flexibility** to pick tiling shape, layer fusion depth, intra/inter
//! feature-map parallelism, loop order and buffering depth per layer, and
//! (iii) a **morphing controller** that selects and cascades those
//! optimizations automatically from the layer's dimensions, the measured
//! sparsity of the live tensors, and the available on-chip resources.
//!
//! ## Crate map
//!
//! * [`model`] — layer IR, network zoo (LeNet-5 / AlexNet / VGG-16),
//!   tensors, sparsity-controlled workload generators, golden executor;
//! * [`compress`] — the codecs with cycle/energy cost models;
//! * [`fabric`] — PE array, scratchpad, NoC, DRAM, DMA, tile pipeline;
//! * [`fault`] — deterministic fault injection: seeded fault timelines,
//!   quarantine geometry and the healthy carve windows recovery re-morphs
//!   into;
//! * [`energy`] — event pricing, area model, derived metrics;
//! * [`core`] — tiling/fusion/parallelism engines, planner, controller,
//!   simulator, baselines (re-exported at the top level);
//! * [`runtime`] — multi-tenant serving: disjoint fabric leases, admission
//!   control, and online re-morphing of in-flight jobs;
//! * [`serve`] — the serving tier above `runtime`: a deterministic TCP
//!   reactor multiplexing concurrent clients, service-time calibration,
//!   SLO-aware load shedding, and seeded heavy-tailed open-loop traffic;
//! * [`fleet`] — the fleet layer above `runtime`/`serve`: N heterogeneous
//!   fabric instances behind one deterministic router (round-robin,
//!   locality-aware, power-of-two-choices), with per-shard fault domains
//!   and quarantine-triggered re-balancing;
//! * [`engine`] — the deterministic parallel execution engine: a fixed-size
//!   worker pool whose canonical-order reduction keeps every output
//!   byte-identical across worker counts;
//! * [`obs`] — deterministic instrumentation: spans, counters and exact
//!   histograms, compiled away entirely on the no-op recorder;
//! * [`trace`] — the analysis layer over `obs` streams: span-tree
//!   profiling, critical paths, exact phase/energy attribution, Chrome
//!   trace export and profile diffing.
//!
//! ## Quickstart
//!
//! ```
//! use mocha::prelude::*;
//!
//! // A workload: LeNet-5 with 60 % input sparsity and 30 % weight sparsity.
//! let workload = Workload::generate(network::lenet5(), SparsityProfile::NOMINAL, 42);
//!
//! // MOCHA optimizing energy-delay product, verified against the golden model.
//! let sim = Simulator::new(Accelerator::mocha(Objective::Edp));
//! let run = sim.run(&workload);
//!
//! let report = run.report(&EnergyTable::default());
//! println!("{}: {:.2} GOPS, {:.2} GOPS/W, {} KB peak storage",
//!          run.network, report.gops(), report.gops_per_watt(),
//!          report.peak_storage_bytes / 1024);
//! assert!(report.gops() > 0.0);
//! ```

#![warn(missing_docs)]

pub use mocha_compress as compress;
pub use mocha_core as core;
pub use mocha_energy as energy;
pub use mocha_engine as engine;
pub use mocha_fabric as fabric;
pub use mocha_fault as fault;
pub use mocha_fleet as fleet;
pub use mocha_model as model;
pub use mocha_obs as obs;
pub use mocha_runtime as runtime;
pub use mocha_serve as serve;
pub use mocha_trace as trace;

/// The commonly-used API surface in one import.
pub mod prelude {
    pub use mocha_compress::{best_codec, Codec, CodecCostTable, Compressed};
    pub use mocha_core::{
        decide, execute_layer, plan_layer, Accelerator, CompressionChoice, Decision, ExecContext,
        GroupMetrics, LayerPlan, LayerRun, LoopOrder, MorphConfig, Objective, Parallelism,
        PlanContext, Policy, RunMetrics, Simulator, SparsityEstimate, Tiling,
    };
    pub use mocha_energy::{
        improvement, reduction, AreaTable, EnergyTable, EventCounts, FabricInventory, PerfReport,
    };
    pub use mocha_fabric::{Buffering, FabricConfig};
    pub use mocha_model::{
        gen::SparsityProfile, gen::Workload, golden, network, KernelShape, Layer, LayerKind,
        Network, PoolKind, TensorShape,
    };
}
