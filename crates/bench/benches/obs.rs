//! Benchmarks for the observability layer: raw recorder operation costs,
//! and the zero-overhead claim — a simulator run with the no-op recorder
//! timed against the plain entry point.

use mocha::obs::{names, Histogram, MemRecorder, NoopRecorder, Recorder};
use mocha::prelude::*;
use mocha_bench::micro::Group;
use std::time::Duration;

fn main() {
    let group = Group::new("obs").budget(Duration::from_millis(300));

    // Raw primitive costs on the in-memory recorder.
    group.bench("hist/record_1k_mixed", None, || {
        let mut h = Histogram::new();
        for i in 0..1000u64 {
            h.record(i.wrapping_mul(0x9e3779b97f4a7c15) % 256);
        }
        h.p99()
    });
    group.bench("recorder/add_1k_counters", None, || {
        let mut r = MemRecorder::new();
        for _ in 0..1000 {
            r.add(names::FABRIC_MACS, 7);
        }
        r.counter(names::FABRIC_MACS)
    });
    group.bench("recorder/span_256", None, || {
        let mut r = MemRecorder::new();
        for i in 0..256u64 {
            r.span(|| format!("job/0/group/{i}"), i, i + 1);
        }
        r.spans().len()
    });
    group.bench("recorder/span_256_noop", None, || {
        let mut r = NoopRecorder;
        for i in 0..256u64 {
            r.span(|| format!("job/0/group/{i}"), i, i + 1);
        }
    });

    // The zero-overhead claim: `run` (which is `run_with(NoopRecorder)`)
    // vs an explicit no-op recorder vs active recording, on the same
    // workload. The first two must be indistinguishable.
    let workload = Workload::generate(network::tiny(), SparsityProfile::NOMINAL, 3);
    let mut sim = Simulator::new(Accelerator::mocha(Objective::Edp));
    sim.verify = false;
    let group = Group::new("obs-sim").budget(Duration::from_millis(500));
    group.bench("tiny/plain_run", None, || sim.run(&workload));
    group.bench("tiny/noop_recorder", None, || {
        sim.run_with(&workload, &mut NoopRecorder)
    });
    group.bench("tiny/mem_recorder", None, || {
        let mut rec = MemRecorder::new();
        sim.run_with(&workload, &mut rec)
    });
}
