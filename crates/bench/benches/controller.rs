//! Micro-benchmarks for the morphing controller's design-space search — the
//! "intelligence" must stay cheap enough to run per layer.

use mocha::core::controller;
use mocha::prelude::*;
use mocha_bench::micro::Group;

fn main() {
    let fabric = FabricConfig::mocha();
    let costs = CodecCostTable::default();
    let energy = EnergyTable::default();
    let ctx = PlanContext {
        fabric: &fabric,
        codec_costs: &costs,
        energy: &energy,
    };
    let est = SparsityEstimate {
        ifmap_sparsity: 0.6,
        ifmap_mean_run: 3.0,
        kernel_sparsity: 0.3,
        ofmap_sparsity: 0.5,
        ofmap_mean_run: 2.0,
    };

    let group = Group::new("controller");
    for (name, net) in [
        (
            "conv3_shape",
            network::single_conv(256, 13, 13, 384, 3, 1, 1),
        ),
        (
            "conv1_shape",
            network::single_conv(3, 227, 227, 96, 11, 4, 0),
        ),
    ] {
        group.bench(&format!("decide_mocha/{name}"), None, || {
            controller::decide(
                &ctx,
                Policy::Mocha {
                    objective: Objective::Edp,
                },
                net.layers(),
                &est,
                true,
            )
        });
    }
}
