//! Criterion micro-benchmarks for the morphing controller's design-space
//! search — the "intelligence" must stay cheap enough to run per layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mocha::core::controller;
use mocha::prelude::*;

fn controller_benches(c: &mut Criterion) {
    let fabric = FabricConfig::mocha();
    let costs = CodecCostTable::default();
    let energy = EnergyTable::default();
    let ctx = PlanContext { fabric: &fabric, codec_costs: &costs, energy: &energy };
    let est = SparsityEstimate {
        ifmap_sparsity: 0.6,
        ifmap_mean_run: 3.0,
        kernel_sparsity: 0.3,
        ofmap_sparsity: 0.5,
        ofmap_mean_run: 2.0,
    };

    let mut group = c.benchmark_group("controller");
    for (name, net) in [
        ("conv3_shape", network::single_conv(256, 13, 13, 384, 3, 1, 1)),
        ("conv1_shape", network::single_conv(3, 227, 227, 96, 11, 4, 0)),
    ] {
        group.bench_with_input(BenchmarkId::new("decide_mocha", name), &net, |b, n| {
            b.iter(|| {
                controller::decide(
                    &ctx,
                    Policy::Mocha { objective: Objective::Edp },
                    n.layers(),
                    &est,
                    true,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, controller_benches);
criterion_main!(benches);
