//! Benchmarks for the trace analysis layer on a large synthetic stream
//! (~100k spans): JSONL parsing, span-tree reconstruction, and the full
//! profile pipeline including exact energy attribution.

use mocha::obs::{names, MemRecorder, Recorder};
use mocha::trace;
use mocha_bench::micro::Group;
use std::time::Duration;

/// Builds a synthetic multi-job stream shaped like real runtime output:
/// `jobs × groups × tiles` tile pipelines with load/compute/store stages,
/// plus the counters the energy attribution joins against.
fn synthetic_stream(jobs: u64, groups_per_job: u64, tiles_per_group: u64) -> String {
    let mut rec = MemRecorder::new();
    let mut clock = 0u64;
    for j in 0..jobs {
        let job_start = clock;
        for g in 0..groups_per_job {
            let gpath = format!("job/{j}/group/layer{g}");
            let gstart = clock;
            let mut gend = gstart;
            // Group span first — tile spans attach to the open group.
            // Stage lengths vary per tile so the critical-path walk has
            // real work to do; end recorded after the tiles are known.
            let mut tiles = Vec::new();
            for t in 0..tiles_per_group {
                let base = gstart + t * 40;
                let load = 25 + (t % 7);
                let comp = 30 + (t % 11);
                let store = 8 + (t % 3);
                tiles.push((t, base, load, comp, store));
                gend = gend.max(base + load + comp + store);
            }
            rec.span(|| gpath.clone(), gstart, gend);
            for (t, base, load, comp, store) in tiles {
                rec.span(|| format!("{gpath}/tile/{t}/load"), base, base + load);
                rec.span(
                    || format!("{gpath}/tile/{t}/compute"),
                    base + load,
                    base + load + comp,
                );
                rec.span(
                    || format!("{gpath}/tile/{t}/store"),
                    base + load + comp,
                    base + load + comp + store,
                );
            }
            rec.add(names::FABRIC_MACS, 1000 * tiles_per_group);
            rec.add(names::FABRIC_DRAM_READ_BYTES, 64 * tiles_per_group);
            rec.add_f64(
                names::FABRIC_CODEC_PRICED_PJ,
                0.125 * tiles_per_group as f64,
            );
            clock = gend + 10;
        }
        rec.span(|| format!("job/{j}"), job_start, clock);
    }
    rec.to_jsonl()
}

fn main() {
    // 16 jobs × 32 groups × 64 tiles × 3 stages + group/job spans
    // ≈ 100k spans, a few MB of JSONL.
    let text = synthetic_stream(16, 32, 64);
    let stream = trace::parse_input(&text).expect("synthetic stream parses");
    let spans = stream.spans.len();
    let bytes = text.len() as u64;
    println!("synthetic stream: {spans} spans, {} KiB", bytes / 1024);

    let group = Group::new("trace").budget(Duration::from_millis(500));
    group.bench("parse_100k_spans", Some(bytes), || {
        trace::parse_input(&text).expect("parses")
    });
    group.bench("tree_build_100k_spans", None, || {
        trace::SpanTree::build(&stream.spans).expect("builds")
    });
    let table = mocha::energy::EnergyTable::default();
    group.bench("profile_full_pipeline", Some(bytes), || {
        trace::profile_input(&text, &table).expect("profiles")
    });
    let tree = trace::SpanTree::build(&stream.spans).expect("builds");
    group.bench("chrome_export", None, || trace::chrome::export(&tree));
}
