//! Benchmarks for whole-network simulation: MOCHA vs baselines on LeNet-5
//! (functional execution + exact accounting, verification off).

use mocha::prelude::*;
use mocha_bench::micro::Group;
use std::time::Duration;

fn main() {
    let workload = Workload::generate(network::lenet5(), SparsityProfile::NOMINAL, 3);
    let group = Group::new("simulator").budget(Duration::from_millis(500));
    for acc in Accelerator::comparison_set(Objective::Edp) {
        let name = acc.name.clone();
        group.bench(&format!("lenet5/{name}"), None, || {
            let mut sim = Simulator::new(acc.clone());
            sim.verify = false;
            sim.run(&workload)
        });
    }
}
