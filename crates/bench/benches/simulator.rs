//! Criterion benchmarks for whole-network simulation: MOCHA vs baselines on
//! LeNet-5 (functional execution + exact accounting, verification off).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mocha::prelude::*;

fn simulator_benches(c: &mut Criterion) {
    let workload = Workload::generate(network::lenet5(), SparsityProfile::NOMINAL, 3);
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    for acc in Accelerator::comparison_set(Objective::Edp) {
        let name = acc.name.clone();
        group.bench_with_input(BenchmarkId::new("lenet5", &name), &acc, |b, a| {
            b.iter(|| {
                let mut sim = Simulator::new(a.clone());
                sim.verify = false;
                sim.run(&workload)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, simulator_benches);
criterion_main!(benches);
