//! Micro-benchmarks for the golden reference executor — the correctness
//! oracle every simulated dataflow is checked against, and the dominant
//! cost of `verify = true` runs.

use mocha::model::gen::{SparsityProfile, Workload};
use mocha::model::{golden, network};
use mocha_bench::micro::Group;

fn main() {
    let group = Group::new("golden");

    let lenet = Workload::generate(network::lenet5(), SparsityProfile::NOMINAL, 3);
    group.bench("forward_lenet5", None, || golden::forward(&lenet));

    let tiny = Workload::generate(network::tiny(), SparsityProfile::NOMINAL, 3);
    let conv1 = &tiny.network.layers()[0];
    group.bench("conv_tiny_conv1", None, || {
        golden::conv(conv1, &tiny.input, tiny.kernel(0))
    });
}
