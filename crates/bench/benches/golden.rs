//! Criterion micro-benchmarks for the golden reference executor — the
//! correctness oracle every simulated dataflow is checked against, and the
//! dominant cost of `verify = true` runs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mocha::model::gen::{SparsityProfile, Workload};
use mocha::model::{golden, network};

fn golden_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("golden");

    let lenet = Workload::generate(network::lenet5(), SparsityProfile::NOMINAL, 3);
    group.throughput(Throughput::Elements(lenet.network.total_macs()));
    group.bench_function("forward_lenet5", |b| b.iter(|| golden::forward(&lenet)));

    let tiny = Workload::generate(network::tiny(), SparsityProfile::NOMINAL, 3);
    let conv1 = &tiny.network.layers()[0];
    group.throughput(Throughput::Elements(conv1.macs()));
    group.bench_function("conv_tiny_conv1", |b| {
        b.iter(|| golden::conv(conv1, &tiny.input, tiny.kernel(0)))
    });

    group.finish();
}

criterion_group!(benches, golden_benches);
criterion_main!(benches);
