//! Engine scaling bench: the same DSE candidate sweep and R1 serving sweep
//! at worker counts 1/2/4/max, asserting byte-identical results at every
//! width and reporting the wall-clock speedup over the sequential run.
//!
//! On a host with ≥4 cores the 4-wide DSE sweep must be at least 2× faster
//! than 1-wide (the engine's headline acceptance criterion); on smaller
//! hosts the speedup is reported but not asserted — determinism always is.

use mocha::core::dse::{explore_layer_on, DesignPoint};
use mocha::engine::Engine;
use mocha::prelude::*;
use mocha_bench::{run_by_id, ExpConfig};
use std::time::Instant;

/// Median-of-3 wall time of `f`, in seconds.
fn time3<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[1]
}

/// A stable fingerprint of a Pareto front: every coordinate and config.
fn fingerprint(fronts: &[Vec<DesignPoint>]) -> String {
    let mut s = String::new();
    for front in fronts {
        for p in front {
            s.push_str(&format!(
                "{}|{}|{}|{};",
                p.plan.cycles,
                p.plan.energy_pj.to_bits(),
                p.plan.spm_peak,
                p.morph
            ));
        }
        s.push('\n');
    }
    s
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut widths = vec![1, 2, 4, cores];
    widths.sort_unstable();
    widths.dedup();

    // The DSE sweep: every layer of AlexNet through the full candidate
    // enumeration — the workload the paper's morphing controller runs per
    // network, and the engine's primary sharding target.
    let fabric = FabricConfig::mocha();
    let costs = CodecCostTable::default();
    let energy = EnergyTable::default();
    let ctx = PlanContext {
        fabric: &fabric,
        codec_costs: &costs,
        energy: &energy,
    };
    let est = SparsityEstimate {
        ifmap_sparsity: 0.6,
        ifmap_mean_run: 3.0,
        kernel_sparsity: 0.3,
        ofmap_sparsity: 0.5,
        ofmap_mean_run: 2.0,
    };
    let net = network::alexnet();

    println!("\n== engine scaling: DSE sweep (alexnet, all layers) ==");
    let mut dse_base = 0.0;
    let mut dse_fp: Option<String> = None;
    for &w in &widths {
        let engine = Engine::new(w);
        let sweep = || -> Vec<Vec<DesignPoint>> {
            net.layers()
                .iter()
                .map(|l| explore_layer_on(&engine, &ctx, l, &est, true))
                .collect()
        };
        let fp = fingerprint(&sweep());
        match &dse_fp {
            None => dse_fp = Some(fp),
            Some(base) => assert_eq!(*base, fp, "DSE front differs at {w} threads"),
        }
        let t = time3(sweep);
        if w == 1 {
            dse_base = t;
        }
        println!(
            "dse/threads={w:<3} {:>10.1} ms  speedup {:>5.2}x",
            t * 1e3,
            dse_base / t
        );
        if w == 4 && cores >= 4 {
            assert!(
                dse_base / t >= 2.0,
                "4-wide DSE sweep must be ≥2x faster than sequential on a \
                 {cores}-core host (got {:.2}x)",
                dse_base / t
            );
        }
    }

    // The R1 serving sweep: (load, policy) points sharded across the
    // engine, table required byte-identical at every width.
    println!("\n== engine scaling: R1 serving sweep (quick) ==");
    let mut r1_base = 0.0;
    let mut r1_out: Option<String> = None;
    for &w in &widths {
        let cfg = ExpConfig {
            quick: true,
            seed: 42,
            threads: w,
        };
        let out = run_by_id("r1", &cfg).expect("r1 exists");
        match &r1_out {
            None => r1_out = Some(out),
            Some(base) => assert_eq!(*base, out, "R1 table differs at {w} threads"),
        }
        let t = time3(|| run_by_id("r1", &cfg));
        if w == 1 {
            r1_base = t;
        }
        println!(
            "r1/threads={w:<4} {:>10.1} ms  speedup {:>5.2}x",
            t * 1e3,
            r1_base / t
        );
    }
    println!("\nresults byte-identical across thread counts {widths:?} ({cores} cores)");
}
