//! Engine scaling bench: the same DSE candidate sweep and R1 serving sweep
//! at worker counts 1/2/4/max, asserting byte-identical results at every
//! width and reporting the wall-clock speedup over the sequential run —
//! plus the morph-decision cache's cold-vs-warm passes, asserting the warm
//! replay is byte-identical and gating its speedup.
//!
//! On a host with ≥4 cores the 4-wide DSE sweep must be at least 2× faster
//! than 1-wide (the engine's headline acceptance criterion); on smaller
//! hosts the speedup is reported but not asserted — determinism always is.
//! The warm-cache controller sweep is gated everywhere (≥2×): a warm hit is
//! a table lookup, so the floor is machine-independent.
//!
//! With `CACHE_SMOKE_JSON=1` the cache section emits one `cache-smoke {...}`
//! JSON line for `ci.sh`, which gates it against `baselines/cache-smoke.json`.

use mocha::core::controller::{decide_cached, Policy};
use mocha::core::dse::{explore_layer_on, DesignPoint};
use mocha::core::{DecisionCache, DecisionShard, Objective};
use mocha::engine::Engine;
use mocha::obs::NoopRecorder;
use mocha::prelude::*;
use mocha::runtime::{generate, run_with, run_with_cache, Mix, RuntimeConfig, TrafficConfig};
use mocha_bench::{run_by_id, ExpConfig};
use std::time::Instant;

/// Median-of-3 wall time of `f`, in seconds.
fn time3<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[1]
}

/// A stable fingerprint of a Pareto front: every coordinate and config.
fn fingerprint(fronts: &[Vec<DesignPoint>]) -> String {
    let mut s = String::new();
    for front in fronts {
        for p in front {
            s.push_str(&format!(
                "{}|{}|{}|{};",
                p.plan.cycles,
                p.plan.energy_pj.to_bits(),
                p.plan.spm_peak,
                p.morph
            ));
        }
        s.push('\n');
    }
    s
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut widths = vec![1, 2, 4, cores];
    widths.sort_unstable();
    widths.dedup();
    // ci.sh's cache smoke sets this to skip the (slow) scaling sweeps and
    // run only the decision-cache sections.
    let smoke_only = std::env::var_os("CACHE_SMOKE_ONLY").is_some();

    // The DSE sweep: every layer of AlexNet through the full candidate
    // enumeration — the workload the paper's morphing controller runs per
    // network, and the engine's primary sharding target.
    let fabric = FabricConfig::mocha();
    let costs = CodecCostTable::default();
    let energy = EnergyTable::default();
    let ctx = PlanContext {
        fabric: &fabric,
        codec_costs: &costs,
        energy: &energy,
    };
    let est = SparsityEstimate {
        ifmap_sparsity: 0.6,
        ifmap_mean_run: 3.0,
        kernel_sparsity: 0.3,
        ofmap_sparsity: 0.5,
        ofmap_mean_run: 2.0,
    };
    let net = network::alexnet();

    if !smoke_only {
        scaling_sweeps(&widths, cores, &ctx, &net, &est);
    }

    // ---- morph-decision cache: cold vs warm controller sweep ------------
    // Every layer tail of AlexNet through the full `decide` search. A warm
    // hit replays the memoized decision without searching, so the speedup
    // floor (2x) holds on any machine — and the warm decisions must render
    // byte-identically to the cold ones.
    println!("\n== decision cache: cold vs warm controller sweep (alexnet) ==");
    let policy = Policy::Mocha {
        objective: Objective::Edp,
    };
    let controller_sweep = |cache: &mut DecisionCache| -> String {
        let mut out = String::new();
        for start in 0..net.layers().len() {
            let mut shard = DecisionShard::new(cache);
            let d = decide_cached(&ctx, policy, &net.layers()[start..], &est, true, &mut shard);
            out.push_str(&format!("{d:?}\n"));
            cache.absorb(shard.into_delta(), &mut NoopRecorder);
        }
        out
    };
    let cold_fp = controller_sweep(&mut DecisionCache::new());
    let cold_t = time3(|| controller_sweep(&mut DecisionCache::new()));
    let mut warm_cache = DecisionCache::new();
    controller_sweep(&mut warm_cache);
    let warm_fp = controller_sweep(&mut warm_cache);
    assert_eq!(cold_fp, warm_fp, "warm controller sweep changed a decision");
    let warm_t = time3(|| controller_sweep(&mut warm_cache));
    let dse_speedup = cold_t / warm_t;
    println!(
        "decide/cold {:>10.1} ms   decide/warm {:>10.1} ms   speedup {:>5.2}x   \
         ({} hits / {} decisions)",
        cold_t * 1e3,
        warm_t * 1e3,
        dse_speedup,
        warm_cache.hits(),
        warm_cache.decisions(),
    );
    assert!(
        dse_speedup >= 2.0,
        "warm decision cache must be ≥2x faster than cold search (got {dse_speedup:.2}x)"
    );

    // ---- morph-decision cache: cold vs warm serve-path batch ------------
    // The serving tier's steady state: the same runtime batch replayed
    // through one shared cache. The warm batch must reproduce the cache-off
    // report byte-for-byte; the wall-clock win is Amdahl-limited by the
    // functional simulation, so it is reported (and smoke-gated in ci.sh),
    // not floor-asserted here.
    println!("\n== decision cache: cold vs warm runtime batch (serve path) ==");
    let subs = generate(&TrafficConfig {
        jobs: 8,
        load: 3.0,
        seed: 42,
        mix: Mix::Quick,
    });
    let rt_cfg = RuntimeConfig {
        threads: 2,
        ..RuntimeConfig::default()
    };
    let plain = run_with(&rt_cfg, &subs, &mut NoopRecorder);
    let mut serve_cache = DecisionCache::new();
    let first = run_with_cache(&rt_cfg, &subs, &mut serve_cache, &mut NoopRecorder);
    assert_eq!(first, plain, "cold cached batch diverged from cache-off");
    let batch_cold_t = time3(|| {
        let mut c = DecisionCache::new();
        run_with_cache(&rt_cfg, &subs, &mut c, &mut NoopRecorder)
    });
    let warm = run_with_cache(&rt_cfg, &subs, &mut serve_cache, &mut NoopRecorder);
    assert_eq!(warm, plain, "warm cached batch diverged from cache-off");
    let hits_before_timing = serve_cache.hits();
    let batch_warm_t =
        time3(|| run_with_cache(&rt_cfg, &subs, &mut serve_cache, &mut NoopRecorder));
    assert!(
        serve_cache.hits() > hits_before_timing,
        "warm serve batches must hit the shared cache"
    );
    let batch_speedup = batch_cold_t / batch_warm_t;
    println!(
        "batch/cold  {:>10.1} ms   batch/warm  {:>10.1} ms   speedup {:>5.2}x",
        batch_cold_t * 1e3,
        batch_warm_t * 1e3,
        batch_speedup,
    );

    if std::env::var_os("CACHE_SMOKE_JSON").is_some() {
        // Deterministic counters plus the measured speedups, for the ci.sh
        // smoke gate against baselines/cache-smoke.json.
        println!(
            "cache-smoke {{\"decisions\":{},\"hits\":{},\"misses\":{},\"entries\":{},\
             \"dse_speedup\":{:.3},\"batch_speedup\":{:.3}}}",
            warm_cache.decisions(),
            warm_cache.hits(),
            warm_cache.misses(),
            warm_cache.len(),
            dse_speedup,
            batch_speedup,
        );
    }
}

/// The engine scaling sections: the DSE sweep and the R1 serving sweep at
/// every worker width, byte-identity asserted throughout. Skipped under
/// `CACHE_SMOKE_ONLY` so ci.sh's cache smoke stays fast.
fn scaling_sweeps(
    widths: &[usize],
    cores: usize,
    ctx: &PlanContext,
    net: &Network,
    est: &SparsityEstimate,
) {
    println!("\n== engine scaling: DSE sweep (alexnet, all layers) ==");
    let mut dse_base = 0.0;
    let mut dse_fp: Option<String> = None;
    for &w in widths {
        let engine = Engine::new(w);
        let sweep = || -> Vec<Vec<DesignPoint>> {
            net.layers()
                .iter()
                .map(|l| explore_layer_on(&engine, ctx, l, est, true))
                .collect()
        };
        let fp = fingerprint(&sweep());
        match &dse_fp {
            None => dse_fp = Some(fp),
            Some(base) => assert_eq!(*base, fp, "DSE front differs at {w} threads"),
        }
        let t = time3(sweep);
        if w == 1 {
            dse_base = t;
        }
        println!(
            "dse/threads={w:<3} {:>10.1} ms  speedup {:>5.2}x",
            t * 1e3,
            dse_base / t
        );
        if w == 4 && cores >= 4 {
            assert!(
                dse_base / t >= 2.0,
                "4-wide DSE sweep must be ≥2x faster than sequential on a \
                 {cores}-core host (got {:.2}x)",
                dse_base / t
            );
        }
    }

    // The R1 serving sweep: (load, policy) points sharded across the
    // engine, table required byte-identical at every width.
    println!("\n== engine scaling: R1 serving sweep (quick) ==");
    let mut r1_base = 0.0;
    let mut r1_out: Option<String> = None;
    for &w in widths {
        let cfg = ExpConfig {
            quick: true,
            seed: 42,
            threads: w,
            cache: false,
        };
        let out = run_by_id("r1", &cfg).expect("r1 exists");
        match &r1_out {
            None => r1_out = Some(out),
            Some(base) => assert_eq!(*base, out, "R1 table differs at {w} threads"),
        }
        let t = time3(|| run_by_id("r1", &cfg));
        if w == 1 {
            r1_base = t;
        }
        println!(
            "r1/threads={w:<4} {:>10.1} ms  speedup {:>5.2}x",
            t * 1e3,
            r1_base / t
        );
    }
    println!("\nresults byte-identical across thread counts {widths:?} ({cores} cores)");
}
