//! Micro-benchmarks for the compression codecs: encode/decode throughput
//! across sparsity regimes — the rates the `CodecCostTable` abstracts in
//! hardware, measured here in software for the simulator's own hot path.

use mocha::compress::{bitmask, zrle};
use mocha::model::gen;
use mocha::model::shape::TensorShape;
use mocha_bench::micro::Group;

fn main() {
    let shape = TensorShape::new(32, 64, 64);
    let group = Group::new("codec");
    for sparsity in [0.0, 0.5, 0.9] {
        let data = gen::clustered_activations(shape, sparsity, 8, &mut gen::rng(1));
        let bytes = data.data().len() as u64;
        let pct = format!("{:.0}%", sparsity * 100.0);

        group.bench(&format!("zrle_encode/{pct}"), Some(bytes), || {
            zrle::encode(data.data())
        });
        let enc = zrle::encode(data.data());
        group.bench(&format!("zrle_decode/{pct}"), Some(bytes), || {
            zrle::decode(&enc, data.data().len())
        });

        group.bench(&format!("bitmask_encode/{pct}"), Some(bytes), || {
            bitmask::encode(data.data())
        });
        let benc = bitmask::encode(data.data());
        group.bench(&format!("bitmask_decode/{pct}"), Some(bytes), || {
            bitmask::decode(&benc, data.data().len())
        });
    }
}
