//! Criterion micro-benchmarks for the compression codecs: encode/decode
//! throughput across sparsity regimes — the rates the `CodecCostTable`
//! abstracts in hardware, measured here in software for the simulator's
//! own hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mocha::compress::{bitmask, zrle};
use mocha::model::gen;
use mocha::model::shape::TensorShape;

fn codec_benches(c: &mut Criterion) {
    let shape = TensorShape::new(32, 64, 64);
    let mut group = c.benchmark_group("codec");
    for sparsity in [0.0, 0.5, 0.9] {
        let data = gen::clustered_activations(shape, sparsity, 8, &mut gen::rng(1));
        group.throughput(Throughput::Bytes(data.data().len() as u64));

        group.bench_with_input(
            BenchmarkId::new("zrle_encode", format!("{:.0}%", sparsity * 100.0)),
            data.data(),
            |b, d| b.iter(|| zrle::encode(d)),
        );
        let enc = zrle::encode(data.data());
        group.bench_with_input(
            BenchmarkId::new("zrle_decode", format!("{:.0}%", sparsity * 100.0)),
            &enc,
            |b, e| b.iter(|| zrle::decode(e, data.data().len())),
        );

        group.bench_with_input(
            BenchmarkId::new("bitmask_encode", format!("{:.0}%", sparsity * 100.0)),
            data.data(),
            |b, d| b.iter(|| bitmask::encode(d)),
        );
        let benc = bitmask::encode(data.data());
        group.bench_with_input(
            BenchmarkId::new("bitmask_decode", format!("{:.0}%", sparsity * 100.0)),
            &benc,
            |b, e| b.iter(|| bitmask::decode(e, data.data().len())),
        );
    }
    group.finish();
}

criterion_group!(benches, codec_benches);
criterion_main!(benches);
