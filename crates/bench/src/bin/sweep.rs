//! `sweep` — factorial experiment sweeps with CSV output, for plotting and
//! downstream analysis.
//!
//! ```text
//! cargo run -p mocha-bench --release --bin sweep -- [--networks a,b] \
//!     [--accelerators a,b] [--profiles a,b] [--seeds 1,2,3] [--quick]
//! ```
//!
//! Emits one CSV row per (network × accelerator × profile × seed) cell:
//! cycles, GOPS, GOPS/W, EDP, peak storage, DRAM bytes, compression ratio.

use mocha::prelude::*;

fn parse_list(args: &[String], key: &str, default: &[&str]) -> Vec<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.split(',').map(str::to_string).collect())
        .unwrap_or_else(|| default.iter().map(|s| s.to_string()).collect())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let default_networks: &[&str] = if quick {
        &["tiny", "lenet5"]
    } else {
        &["lenet5", "mobilenet", "alexnet"]
    };
    let networks = parse_list(&args, "--networks", default_networks);
    let accelerators = parse_list(
        &args,
        "--accelerators",
        &["mocha", "mocha-nc", "tiling", "fusion", "parallel"],
    );
    let profiles = parse_list(&args, "--profiles", &["dense", "nominal", "sparse"]);
    let seeds: Vec<u64> = parse_list(&args, "--seeds", &["42"])
        .iter()
        .map(|s| s.parse().expect("--seeds must be integers"))
        .collect();

    let table = EnergyTable::default();
    println!(
        "network,accelerator,profile,seed,cycles,seconds,gops,gops_per_watt,edp_js,peak_storage_bytes,dram_bytes,compression_ratio"
    );
    for net_name in &networks {
        let net = network::by_name(net_name).unwrap_or_else(|| {
            eprintln!("unknown network {net_name:?}");
            std::process::exit(2);
        });
        for prof_name in &profiles {
            let profile = match prof_name.as_str() {
                "dense" => SparsityProfile::DENSE,
                "nominal" => SparsityProfile::NOMINAL,
                "sparse" => SparsityProfile::SPARSE,
                other => {
                    eprintln!("unknown profile {other:?}");
                    std::process::exit(2);
                }
            };
            for &seed in &seeds {
                let workload = Workload::generate(net.clone(), profile, seed);
                for acc_name in &accelerators {
                    let acc = match acc_name.as_str() {
                        "mocha" => Accelerator::mocha(Objective::Edp),
                        "mocha-nc" => Accelerator::mocha_no_compression(Objective::Edp),
                        "tiling" => Accelerator::tiling_only(),
                        "fusion" => Accelerator::fusion_only(),
                        "parallel" => Accelerator::parallelism_only(),
                        other => {
                            eprintln!("unknown accelerator {other:?}");
                            std::process::exit(2);
                        }
                    };
                    let mut sim = Simulator::new(acc);
                    sim.verify = false;
                    let run = sim.run(&workload);
                    let r = run.report(&table);
                    println!(
                        "{net_name},{acc_name},{prof_name},{seed},{},{:.6e},{:.3},{:.3},{:.6e},{},{},{:.4}",
                        r.cycles,
                        r.seconds(),
                        r.gops(),
                        r.gops_per_watt(),
                        r.edp(),
                        r.peak_storage_bytes,
                        r.dram_bytes,
                        run.compression().overall_ratio(),
                    );
                }
            }
        }
    }
}
