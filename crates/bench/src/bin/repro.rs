//! `repro` — regenerates the reconstructed tables and figures of the MOCHA
//! paper (see DESIGN.md for the experiment index and EXPERIMENTS.md for the
//! recorded paper-vs-measured comparison).
//!
//! Usage:
//! ```text
//! cargo run -p mocha-bench --release --bin repro -- all
//! cargo run -p mocha-bench --release --bin repro -- t1 f5 f8
//! cargo run -p mocha-bench --release --bin repro -- --quick all
//! ```

use mocha_bench::{run_by_id, ExpConfig, ALL};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    let ids: Vec<&str> = if ids.is_empty() || ids.contains(&"all") {
        ALL.to_vec()
    } else {
        ids
    };

    let cfg = ExpConfig { quick, seed: 42 };
    for id in ids {
        match run_by_id(id, &cfg) {
            Some(out) => {
                println!("{out}");
            }
            None => {
                eprintln!("unknown experiment {id:?}; known: {ALL:?}");
                std::process::exit(1);
            }
        }
    }
}
