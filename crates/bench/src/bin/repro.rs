//! `repro` — regenerates the reconstructed tables and figures of the MOCHA
//! paper (see DESIGN.md for the experiment index and EXPERIMENTS.md for the
//! recorded paper-vs-measured comparison).
//!
//! Usage:
//! ```text
//! cargo run -p mocha-bench --release --bin repro -- all
//! cargo run -p mocha-bench --release --bin repro -- t1 f5 f8
//! cargo run -p mocha-bench --release --bin repro -- --quick all
//! cargo run -p mocha-bench --release --bin repro -- --threads 8 r1
//! ```
//!
//! `--threads N` sets the engine width for sharded sweeps (absent = all
//! cores, 1 = sequential); tables are byte-identical for every value.

use mocha_bench::{run_by_id, ExpConfig, ALL};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cache = args.iter().any(|a| a == "--cache");
    let threads = match args.iter().position(|a| a == "--threads") {
        None => 0,
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => {
                eprintln!("--threads needs a positive integer");
                std::process::exit(2);
            }
        },
    };
    if threads >= 1 {
        mocha::engine::set_default_threads(threads);
    }
    let mut skip_next = false;
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--threads" {
                skip_next = true;
            }
            !a.starts_with("--")
        })
        .map(String::as_str)
        .collect();

    let ids: Vec<&str> = if ids.is_empty() || ids.contains(&"all") {
        ALL.to_vec()
    } else {
        ids
    };

    let cfg = ExpConfig {
        quick,
        seed: 42,
        threads,
        cache,
    };
    for id in ids {
        match run_by_id(id, &cfg) {
            Some(out) => {
                println!("{out}");
            }
            None => {
                eprintln!("unknown experiment {id:?}; known: {ALL:?}");
                std::process::exit(1);
            }
        }
    }
}
