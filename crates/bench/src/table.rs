//! Minimal fixed-width text tables for the experiment reproductions —
//! the same rows/series the paper's tables and figures report, printable
//! in a terminal and diffable in EXPERIMENTS.md.

/// A fixed-width text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a free-form note printed under the table.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the table with padded columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if i == 0 {
                        format!("{:<w$}", c, w = widths[i])
                    } else {
                        format!("{:>w$}", c, w = widths[i])
                    }
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }
}

/// Formats a ratio as a signed percentage (`+42 %`).
pub fn pct(x: f64) -> String {
    format!("{:+.0} %", 100.0 * x)
}

/// Formats a float with the given precision.
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats bytes as KB with one decimal.
pub fn kb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

/// Formats bytes as MB with two decimals.
pub fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        t.note("hello");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name  12345"));
        assert!(s.contains("a              1"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn rejects_wrong_arity() {
        Table::new("t", &["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.42), "+42 %");
        assert_eq!(pct(-0.3), "-30 %");
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(kb(2048), "2.0");
        assert_eq!(mb(2_500_000), "2.50");
    }
}
