//! # mocha-bench
//!
//! The benchmark harness of the MOCHA reproduction:
//!
//! * [`experiments`] — one module per reconstructed table/figure of the
//!   paper's evaluation (T1–T2, F1–F8; see DESIGN.md for the index), each
//!   regenerating the same rows/series the paper reports;
//! * [`table`] — fixed-width table rendering;
//! * the `repro` binary (`cargo run -p mocha-bench --release --bin repro --
//!   all`) runs any or all of them;
//! * std-timer micro-benchmarks (`cargo bench`) cover the hot paths: the
//!   codecs, the golden executor, the controller search and the full
//!   simulator.

#![warn(missing_docs)]

pub mod experiments;
pub mod micro;
pub mod table;

pub use experiments::{run_by_id, ExpConfig, ALL};

#[cfg(test)]
mod tests {
    use super::*;

    /// Every experiment must at least run in quick mode and produce a table.
    #[test]
    fn all_experiments_run_in_quick_mode() {
        let cfg = ExpConfig {
            quick: true,
            seed: 7,
            ..ExpConfig::default()
        };
        for id in ALL {
            let out = run_by_id(id, &cfg).unwrap_or_else(|| panic!("unknown id {id}"));
            assert!(out.contains("=="), "{id} produced no table header");
            assert!(out.lines().count() > 4, "{id} produced too little output");
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_by_id("nope", &ExpConfig::default()).is_none());
    }
}
