//! A minimal wall-clock micro-benchmark harness (the offline build has no
//! criterion): calibrated warm-up, fixed measurement budget, median-of-runs
//! reporting. Used by the `benches/` targets, which run with
//! `cargo bench -p mocha-bench`.

use std::time::{Duration, Instant};

/// One benchmark group, printed as an aligned block of `name  ns/op` rows.
pub struct Group {
    name: String,
    budget: Duration,
}

impl Group {
    /// Creates a group with the default per-case budget (~200 ms).
    pub fn new(name: &str) -> Self {
        println!("\n== {name} ==");
        Self {
            name: name.to_string(),
            budget: Duration::from_millis(200),
        }
    }

    /// Overrides the per-case measurement budget.
    pub fn budget(mut self, d: Duration) -> Self {
        self.budget = d;
        self
    }

    /// Times `f`, printing the median per-iteration latency and optional
    /// throughput against `bytes` processed per iteration.
    pub fn bench<T>(&self, case: &str, bytes: Option<u64>, mut f: impl FnMut() -> T) {
        // Calibrate: find an iteration count that fills ~1/5 of the budget.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= self.budget / 5 || iters >= 1 << 30 {
                break;
            }
            iters = if dt.is_zero() {
                iters * 16
            } else {
                (iters * 2).max((self.budget.as_nanos() / 5 / dt.as_nanos().max(1)) as u64 * iters)
            };
        }
        // Measure: 5 samples, report the median.
        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                t0.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        let ns = samples[samples.len() / 2];
        match bytes {
            Some(b) => {
                let gbs = b as f64 / ns; // bytes/ns == GB/s
                println!(
                    "{:10}/{:32} {:>12.1} ns/op  {:>8.2} GB/s",
                    self.name, case, ns, gbs
                );
            }
            None => println!("{:10}/{:32} {:>12.1} ns/op", self.name, case, ns),
        }
    }
}
