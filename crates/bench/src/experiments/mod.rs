//! The reconstructed experiment suite — one module per table/figure of the
//! paper's evaluation (see DESIGN.md's experiment index). Every module
//! exposes `run(&ExpConfig) -> String` returning the rendered table(s).

pub mod a1;
pub mod a2;
pub mod a3;
pub mod f1;
pub mod f2;
pub mod f3;
pub mod f4;
pub mod f5;
pub mod f6;
pub mod f7;
pub mod f8;
pub mod r1;
pub mod r2;
pub mod r3;
pub mod r4;
pub mod r5;
pub mod t1;
pub mod t2;

/// Shared experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Quick mode substitutes small networks for the big ones so the whole
    /// suite runs in seconds (used by smoke tests); full mode reproduces
    /// the paper-scale workloads.
    pub quick: bool,
    /// Workload generation seed.
    pub seed: u64,
    /// Engine worker threads for sharded sweeps (`0` = the process-default
    /// width, `1` = sequential). Rendered tables are byte-identical for
    /// every value — sweeps reduce in canonical point order.
    pub threads: usize,
    /// Consult a morph-decision cache in the runtime-backed experiments
    /// (r1, r2) and calibration (r3). Tables are byte-identical either
    /// way — the cache only skips repeated controller searches.
    pub cache: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self {
            quick: false,
            seed: 42,
            threads: 0,
            cache: false,
        }
    }
}

/// All experiment ids in presentation order.
pub const ALL: &[&str] = &[
    "t1", "t2", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "a1", "a2", "a3", "r1", "r2", "r3",
    "r4", "r5",
];

/// Runs one experiment by id; `None` for unknown ids.
pub fn run_by_id(id: &str, cfg: &ExpConfig) -> Option<String> {
    match id {
        "t1" => Some(t1::run(cfg)),
        "t2" => Some(t2::run(cfg)),
        "f1" => Some(f1::run(cfg)),
        "f2" => Some(f2::run(cfg)),
        "f3" => Some(f3::run(cfg)),
        "f4" => Some(f4::run(cfg)),
        "f5" => Some(f5::run(cfg)),
        "f6" => Some(f6::run(cfg)),
        "f7" => Some(f7::run(cfg)),
        "f8" => Some(f8::run(cfg)),
        "a1" => Some(a1::run(cfg)),
        "a2" => Some(a2::run(cfg)),
        "a3" => Some(a3::run(cfg)),
        "r1" => Some(r1::run(cfg)),
        "r2" => Some(r2::run(cfg)),
        "r3" => Some(r3::run(cfg)),
        "r4" => Some(r4::run(cfg)),
        "r5" => Some(r5::run(cfg)),
        _ => None,
    }
}
