//! F5 — Morphing policy ablation: per-layer EDP of the auto controller vs
//! each fixed policy (analytical planner). The crossovers — different fixed
//! policies winning different layers — are the paper's motivation for
//! morphability.

use crate::table::{f, Table};
use mocha::core::controller;
use mocha::prelude::*;

use super::ExpConfig;

/// Runs the experiment and renders its table.
pub fn run(cfg: &ExpConfig) -> String {
    let net_name = if cfg.quick { "tiny" } else { "alexnet" };
    let net = network::by_name(net_name).unwrap();
    let fabric_m = FabricConfig::mocha();
    let fabric_b = FabricConfig::baseline();
    let costs = CodecCostTable::default();
    let energy = EnergyTable::default();

    let mut est = SparsityEstimate {
        ifmap_sparsity: 0.6,
        ifmap_mean_run: 3.0,
        kernel_sparsity: 0.3,
        ofmap_sparsity: 0.5,
        ofmap_mean_run: 2.0,
    };

    let fixed = [
        Policy::TilingOnly,
        Policy::FusionOnly,
        Policy::ParallelismOnly,
    ];
    let mut t = Table::new(
        format!("F5 — per-layer EDP normalized to MOCHA=1.00 on {net_name} (lower is better; winner among fixed)"),
        &["layer", "tiling", "fusion", "parallel", "mocha", "best fixed"],
    );

    let mut wins = std::collections::BTreeMap::<&str, usize>::new();
    for i in 0..net.len() {
        let layers = &net.layers()[i..];
        let pctx_b = PlanContext {
            fabric: &fabric_b,
            codec_costs: &costs,
            energy: &energy,
        };
        let scores: Vec<f64> = fixed
            .iter()
            .map(|&p| {
                let d = controller::decide(&pctx_b, p, layers, &est, true);
                d.plan.edp() / d.group_len as f64
            })
            .collect();
        let pctx_m = PlanContext {
            fabric: &fabric_m,
            codec_costs: &costs,
            energy: &energy,
        };
        let md = controller::decide(
            &pctx_m,
            Policy::Mocha {
                objective: Objective::Edp,
            },
            layers,
            &est,
            true,
        );
        let mocha = md.plan.edp() / md.group_len as f64;

        let names = ["tiling", "fusion", "parallel"];
        let (wi, _) = scores
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        *wins.entry(names[wi]).or_default() += 1;

        t.row(vec![
            net.layers()[i].name.clone(),
            f(scores[0] / mocha, 2),
            f(scores[1] / mocha, 2),
            f(scores[2] / mocha, 2),
            "1.00".into(),
            names[wi].into(),
        ]);
        est = controller::propagate_estimate(&net.layers()[i], &est);
    }
    t.note(format!(
        "fixed-policy wins per layer: {wins:?} — no fixed policy dominates"
    ));
    t.render()
}
