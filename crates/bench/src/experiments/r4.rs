//! R4 (elastic sub-network tracking) — the morph controller picking "which
//! sub-network variant fits the current healthy window", with the
//! morph-decision cache amortizing planning across variants that share
//! layer signatures.
//!
//! An elastic family ([`mocha::model::ElasticFamily`]) enumerates
//! depth×width sub-networks of one super-network. The fabric degrades
//! through a sequence of shrinking *healthy windows* (fewer PE columns,
//! fewer scratchpad banks — the post-quarantine shapes R2 produces). At
//! each window, the controller plans **every** variant analytically and
//! deploys the largest (by MACs) whose planned cycles fit a fixed latency
//! budget, calibrated as the fixed-policy baseline's cost for the
//! super-network on the healthy fabric. A morphing controller keeps bigger
//! variants alive on smaller windows than the fixed-tiling baseline; the
//! decision cache turns the per-variant sweep from N independent searches
//! into mostly lookups, because depth/width siblings share group
//! signatures.
//!
//! Everything here is analytical planning (no tensors), so the table is
//! byte-identical at any `--threads` value; the decision cache is the
//! experiment's *subject* and always on, so `--cache` does not change a
//! byte either.

use crate::table::{f, Table};
use mocha::compress::CodecCostTable;
use mocha::core::cache::{DecisionCache, DecisionShard};
use mocha::core::controller::{decide_cached, propagate_estimate};
use mocha::core::{Objective, PlanContext, Policy, SparsityEstimate};
use mocha::energy::EnergyTable;
use mocha::engine::Engine;
use mocha::fabric::FabricConfig;
use mocha::model::{ElasticFamily, Layer, Network};
use mocha::obs::NoopRecorder;

use super::ExpConfig;

/// Fixed planning-time sparsity assumption (the controller's stationary
/// post-ReLU estimate); deterministic by construction.
const EST0: SparsityEstimate = SparsityEstimate {
    ifmap_sparsity: 0.5,
    ifmap_mean_run: 2.0,
    kernel_sparsity: 0.3,
    ofmap_sparsity: 0.5,
    ofmap_mean_run: 2.0,
};

/// The morphing policy under test: throughput objective, so "fits the
/// budget" compares like with like against the cycle-minimizing baseline.
const MORPH: Policy = Policy::Mocha {
    objective: Objective::Throughput,
};
/// The fixed-optimization baseline.
const FIXED: Policy = Policy::TilingOnly;

/// Healthy-window sequence: the full fabric, then progressively degraded
/// shapes (lost PE columns and scratchpad banks) a quarantine pass leaves.
fn windows() -> Vec<(&'static str, FabricConfig)> {
    let full = FabricConfig::mocha();
    vec![
        ("8x8/16b", full),
        (
            "8x6/12b",
            FabricConfig {
                pe_cols: 6,
                spm_banks: 12,
                ..full
            },
        ),
        (
            "8x4/8b",
            FabricConfig {
                pe_cols: 4,
                spm_banks: 8,
                ..full
            },
        ),
        (
            "4x4/6b",
            FabricConfig {
                pe_rows: 4,
                pe_cols: 4,
                spm_banks: 6,
                ..full
            },
        ),
    ]
}

/// Plans a whole network as the simulator would — group decisions in layer
/// order, sparsity estimate propagated — returning total planned cycles.
fn plan_network(
    ctx: &PlanContext<'_>,
    policy: Policy,
    layers: &[Layer],
    shard: &mut DecisionShard<'_>,
) -> u64 {
    let mut est = EST0;
    let mut cycles = 0u64;
    let mut i = 0;
    while i < layers.len() {
        let d = decide_cached(ctx, policy, &layers[i..], &est, true, shard);
        cycles += d.plan.cycles;
        for l in &layers[i..i + d.group_len] {
            est = propagate_estimate(l, &est);
        }
        i += d.group_len;
    }
    cycles
}

/// One (window, policy) sweep result.
struct Point {
    window: &'static str,
    policy: &'static str,
    pick: String,
    pick_macs: u64,
    pick_cycles: u64,
    decisions: u64,
    hits: u64,
    misses: u64,
}

/// Runs the elastic sub-network sweep and renders its table.
pub fn run(cfg: &ExpConfig) -> String {
    let family = if cfg.quick {
        ElasticFamily::tiny()
    } else {
        ElasticFamily::mobilenet()
    };
    let variants: Vec<Network> = family.enumerate();
    let wins = windows();
    let costs = CodecCostTable::default();
    let energy = EnergyTable::default();

    // Variant indices ordered largest-first (by MACs, index tiebreak): the
    // deployment rule scans this order and takes the first one that fits.
    let mut by_size: Vec<usize> = (0..variants.len()).collect();
    by_size.sort_by_key(|&i| (std::cmp::Reverse(variants[i].total_macs()), i));

    // Latency budget: what the fixed baseline pays for the super-network on
    // the fully healthy window. Both policies are then asked to keep the
    // largest variant under that budget as the window shrinks.
    let super_net = &variants[by_size[0]];
    let budget = {
        let pctx = PlanContext {
            fabric: &wins[0].1,
            codec_costs: &costs,
            energy: &energy,
        };
        plan_network(
            &pctx,
            FIXED,
            super_net.layers(),
            &mut DecisionShard::disabled(),
        )
    };

    let points: Vec<(usize, Policy, &'static str)> = wins
        .iter()
        .enumerate()
        .flat_map(|(wi, _)| [(wi, MORPH, "mocha"), (wi, FIXED, "tiling")])
        .collect();
    let (results, _rec) =
        Engine::new(cfg.threads).map_recorded(points, |_, (wi, policy, pname), _| {
            let (wname, fabric) = &wins[wi];
            let pctx = PlanContext {
                fabric,
                codec_costs: &costs,
                energy: &energy,
            };
            // Per-point cache: keys embed the fabric signature and policy, so a
            // shared table could not produce cross-point hits anyway — private
            // tables keep the sweep embarrassingly parallel AND byte-identical.
            let mut cache = DecisionCache::new();
            let mut cycles = Vec::with_capacity(variants.len());
            for net in &variants {
                let mut shard = DecisionShard::new(&cache);
                let c = plan_network(&pctx, policy, net.layers(), &mut shard);
                let delta = shard.into_delta();
                cache.absorb(delta, &mut NoopRecorder);
                cycles.push(c);
            }
            let pick = by_size.iter().copied().find(|&i| cycles[i] <= budget);
            Point {
                window: wname,
                policy: pname,
                pick: pick
                    .map(|i| variants[i].name.clone())
                    .unwrap_or_else(|| "-".into()),
                pick_macs: pick.map(|i| variants[i].total_macs()).unwrap_or(0),
                pick_cycles: pick.map(|i| cycles[i]).unwrap_or(0),
                decisions: cache.decisions(),
                hits: cache.hits(),
                misses: cache.misses(),
            }
        });

    let mut t = Table::new(
        format!(
            "R4 — elastic family `{}` ({} variants) vs shrinking healthy \
             windows: largest variant fitting a {budget}-cycle budget",
            family.name(),
            variants.len(),
        ),
        &[
            "window", "policy", "variant", "MMAC", "kcyc", "budget %", "lookups", "hit", "miss",
            "hit %",
        ],
    );
    for p in &results {
        t.row(vec![
            p.window.to_string(),
            p.policy.to_string(),
            p.pick.clone(),
            f(p.pick_macs as f64 / 1e6, 2),
            f(p.pick_cycles as f64 / 1e3, 1),
            f(100.0 * p.pick_cycles as f64 / budget as f64, 1),
            p.decisions.to_string(),
            p.hits.to_string(),
            p.misses.to_string(),
            f(100.0 * p.hits as f64 / p.decisions.max(1) as f64, 1),
        ]);
    }

    // Claim 1: the controller tracks the window — deployed variant size
    // never grows as the fabric degrades.
    let mocha_macs: Vec<u64> = results
        .iter()
        .filter(|p| p.policy == "mocha")
        .map(|p| p.pick_macs)
        .collect();
    let tracks = mocha_macs.windows(2).all(|w| w[1] <= w[0]);
    // Claim 2: morphing keeps a variant at least as large as the fixed
    // baseline alive in every window.
    let ge_baseline = wins.iter().all(|(wname, _)| {
        let m = results
            .iter()
            .find(|p| p.window == *wname && p.policy == "mocha");
        let b = results
            .iter()
            .find(|p| p.window == *wname && p.policy == "tiling");
        match (m, b) {
            (Some(m), Some(b)) => m.pick_macs >= b.pick_macs,
            _ => false,
        }
    });
    // Claim 3: signature sharing across variants amplifies the cache.
    let (dec, hit, miss) = results.iter().fold((0u64, 0u64, 0u64), |a, p| {
        (a.0 + p.decisions, a.1 + p.hits, a.2 + p.misses)
    });

    t.note(format!(
        "morph controller {} the healthy window: deployed variant never \
         grows as the fabric degrades",
        if tracks { "tracks" } else { "does NOT track" }
    ));
    t.note(format!(
        "morphing keeps a variant {} the fixed-tiling baseline's in every \
         window",
        if ge_baseline {
            "at least as large as"
        } else {
            "SMALLER than"
        }
    ));
    t.note(format!(
        "decision-cache amplification across {} variants sharing layer \
         signatures: {hit} of {dec} lookups served from cache ({:.1} % hit \
         rate)",
        variants.len(),
        100.0 * hit as f64 / dec.max(1) as f64
    ));
    t.note(format!(
        "r4-smoke {{\"windows\":{},\"variants\":{},\"decisions\":{dec},\
         \"hits\":{hit},\"misses\":{miss},\"tracks\":{},\"ge_baseline\":{}}}",
        wins.len(),
        variants.len(),
        u64::from(tracks),
        u64::from(ge_baseline),
    ));
    t.render()
}
