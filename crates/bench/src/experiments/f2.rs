//! F2 — Per-layer energy breakdown (DRAM / SRAM / NoC / PE / codec /
//! leakage) with and without compression. Shows where compression buys its
//! energy: DRAM and SRAM shrink, a small codec slice appears.

use crate::table::{f, Table};
use mocha::prelude::*;

use super::ExpConfig;

fn breakdowns(
    acc: Accelerator,
    workload: &Workload,
) -> Vec<(String, mocha::energy::EnergyBreakdown)> {
    let mut sim = Simulator::new(acc);
    sim.verify = false;
    sim.run(workload)
        .groups
        .iter()
        .map(|g| (g.name(), g.energy))
        .collect()
}

/// Runs the experiment and renders its tables.
pub fn run(cfg: &ExpConfig) -> String {
    let net_name = if cfg.quick { "tiny" } else { "alexnet" };
    let net = network::by_name(net_name).unwrap();
    // Sparse regime: where compression has something to compress.
    let workload = Workload::generate(net, SparsityProfile::SPARSE, cfg.seed);

    let mut out = String::new();
    for (label, acc) in [
        (
            "with compression (mocha)",
            Accelerator::mocha(Objective::Energy),
        ),
        (
            "without compression (mocha-nc)",
            Accelerator::mocha_no_compression(Objective::Energy),
        ),
    ] {
        let mut t = Table::new(
            format!("F2 — energy breakdown per group, {label} (µJ)"),
            &[
                "group", "PE", "RF", "SRAM", "NoC", "DRAM", "codec", "leak", "total",
            ],
        );
        let mut total = mocha::energy::EnergyBreakdown::default();
        for (name, b) in breakdowns(acc, &workload) {
            t.row(vec![
                name,
                f(b.compute_pj / 1e6, 1),
                f(b.rf_pj / 1e6, 1),
                f(b.spm_pj / 1e6, 1),
                f(b.noc_pj / 1e6, 1),
                f(b.dram_pj / 1e6, 1),
                f(b.codec_pj / 1e6, 1),
                f(b.leakage_pj / 1e6, 1),
                f(b.total_pj() / 1e6, 1),
            ]);
            total.merge(&b);
        }
        t.row(vec![
            "TOTAL".into(),
            f(total.compute_pj / 1e6, 1),
            f(total.rf_pj / 1e6, 1),
            f(total.spm_pj / 1e6, 1),
            f(total.noc_pj / 1e6, 1),
            f(total.dram_pj / 1e6, 1),
            f(total.codec_pj / 1e6, 1),
            f(total.leakage_pj / 1e6, 1),
            f(total.total_pj() / 1e6, 1),
        ]);
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}
