//! F1 — Per-layer throughput: MOCHA vs each fixed-optimization baseline,
//! layer by layer. Shows *where* each baseline falls over (tiling-only on
//! late layers, parallelism-only on fc, fusion-only on big-kernel layers)
//! while MOCHA tracks the per-layer winner.

use crate::table::{f, Table};
use mocha::prelude::*;
use std::collections::HashMap;

use super::ExpConfig;

/// Per-layer GOPS of one accelerator: each layer gets the throughput of the
/// group that contained it.
fn per_layer_gops(acc: Accelerator, workload: &Workload, clock_ghz: f64) -> HashMap<String, f64> {
    let mut sim = Simulator::new(acc);
    sim.verify = false;
    let run = sim.run(workload);
    let mut map = HashMap::new();
    for g in &run.groups {
        let gops = g.gops(clock_ghz);
        for l in &g.layers {
            map.insert(l.clone(), gops);
        }
    }
    map
}

/// Runs the experiment and renders its table.
pub fn run(cfg: &ExpConfig) -> String {
    let net_name = if cfg.quick { "tiny" } else { "alexnet" };
    let net = network::by_name(net_name).unwrap();
    let workload = Workload::generate(net.clone(), SparsityProfile::NOMINAL, cfg.seed);
    let clock = EnergyTable::default().clock_ghz;

    let accs = Accelerator::comparison_set(Objective::Throughput);
    let names: Vec<String> = accs.iter().map(|a| a.name.clone()).collect();
    let maps: Vec<HashMap<String, f64>> = accs
        .into_iter()
        .map(|a| per_layer_gops(a, &workload, clock))
        .collect();

    let mut headers: Vec<&str> = vec!["layer"];
    for n in &names {
        headers.push(n);
    }
    headers.push("mocha vs best baseline");
    let mut t = Table::new(
        format!("F1 — per-layer throughput on {net_name} (GOPS; layers inside a fused group share the group's rate)"),
        &headers,
    );

    for layer in net.layers() {
        let mut cells = vec![layer.name.clone()];
        let vals: Vec<f64> = maps.iter().map(|m| m[&layer.name]).collect();
        for v in &vals {
            cells.push(f(*v, 1));
        }
        let best_base = vals[1..].iter().cloned().fold(f64::MIN, f64::max);
        cells.push(crate::table::pct((vals[0] - best_base) / best_base));
        t.row(cells);
    }
    t.render()
}
