//! R1 (runtime) — multi-tenant serving under load: throughput and tail
//! latency vs offered load, with the adaptive re-morphing lease policy
//! against a static equal-partition baseline on the same arrival trace.
//!
//! The paper's morphing argument, extended to serving: a fixed partition
//! wastes fabric whenever fewer tenants are resident than slots, while
//! adaptive leases grow a lone tenant to the whole fabric and re-carve at
//! the next group boundary when jobs arrive or retire. The gap should open
//! with load, where arrivals force frequent re-carves.

use crate::table::{f, Table};
use mocha::engine::Engine;
use mocha::obs::names;
use mocha_runtime::{generate, run_with, LeasePolicy, Mix, RuntimeConfig, TrafficConfig};

use super::ExpConfig;

/// Runs the load sweep and renders its table.
pub fn run(cfg: &ExpConfig) -> String {
    // Both modes use the quick tenant mix (tiny/LeNet-5): R1 sweeps two
    // policies over several loads, so paper-scale networks would take hours.
    // Full mode differs by driving more jobs per point for tighter tails.
    let jobs = if cfg.quick { 8 } else { 16 };
    let loads: &[f64] = if cfg.quick {
        &[0.5, 4.0]
    } else {
        &[0.5, 2.0, 4.0, 8.0]
    };

    let mut t = Table::new(
        format!(
            "R1 — multi-tenant serving, {jobs} jobs/point on the quad fabric: \
             adaptive re-morphing vs static equal partition"
        ),
        &[
            "load",
            "policy",
            "jobs/Mcyc",
            "p50 kcyc",
            "p95 kcyc",
            "p99 kcyc",
            "util %",
            "GOPS/W",
            "remorphs",
        ],
    );

    // One task per (load, policy) point, sharded across the engine. Each
    // point regenerates its own arrival trace (a pure function of the
    // traffic seed) and records into a private shard; shards are merged in
    // sweep order, so the closing obs note — and the whole table — is
    // byte-identical for every `cfg.threads` value.
    let points: Vec<(f64, LeasePolicy)> = loads
        .iter()
        .flat_map(|&load| {
            [LeasePolicy::Adaptive, LeasePolicy::StaticEqual]
                .into_iter()
                .map(move |policy| (load, policy))
        })
        .collect();
    let (reports, rec) = Engine::new(cfg.threads).map_recorded(points, |_, (load, policy), rec| {
        let traffic = TrafficConfig {
            jobs,
            load,
            seed: cfg.seed,
            mix: Mix::Quick,
        };
        let subs = generate(&traffic);
        let rt = RuntimeConfig {
            policy,
            cache: cfg.cache,
            ..RuntimeConfig::default()
        };
        (load, policy, run_with(&rt, &subs, rec))
    });

    let mut adaptive_wins_at_peak = false;
    // Points come back in sweep order: adaptive/static pairs per load.
    for pair in reports.chunks(2) {
        for (load, policy, report) in pair {
            let remorphs: usize = report.jobs.iter().map(|j| j.remorphs).sum();
            t.row(vec![
                f(*load, 1),
                policy.name().to_string(),
                f(report.jobs_per_mcycle(), 2),
                f(report.latency_percentile(50.0) as f64 / 1e3, 1),
                f(report.latency_percentile(95.0) as f64 / 1e3, 1),
                f(report.latency_percentile(99.0) as f64 / 1e3, 1),
                f(100.0 * report.utilization(), 1),
                f(report.gops_per_watt(), 1),
                remorphs.to_string(),
            ]);
        }
        if pair[0].0 == *loads.last().unwrap() {
            adaptive_wins_at_peak = pair[0].2.jobs_per_mcycle() > pair[1].2.jobs_per_mcycle();
        }
    }

    t.note(format!(
        "at the highest load, adaptive re-morphing {} the static partition on throughput",
        if adaptive_wins_at_peak {
            "beats"
        } else {
            "does NOT beat"
        }
    ));
    t.note("same seeded arrival trace for both policies at each load point");
    t.note(format!(
        "obs totals over the sweep: {} groups stepped, {} interim admissions, \
         {} admission deferrals",
        rec.counter(names::RUNTIME_GROUPS_STEPPED),
        rec.counter(names::RUNTIME_INTERIM_ADMISSIONS),
        rec.counter(names::RUNTIME_ADMISSION_DEFERRALS),
    ));
    t.render()
}
