//! T1 — Headline comparison (the abstract's claims): energy efficiency,
//! throughput and storage of MOCHA vs the next-best fixed-optimization
//! accelerator, per network and sparsity regime.
//!
//! Paper claim: up to **63 % higher energy efficiency**, up to **42 % higher
//! throughput**, up to **30 % less storage** than the next-best accelerator.

use crate::table::{f, kb, pct, Table};
use mocha::prelude::*;

use super::ExpConfig;

fn networks(cfg: &ExpConfig) -> Vec<&'static str> {
    if cfg.quick {
        vec!["tiny", "lenet5"]
    } else {
        vec!["lenet5", "mobilenet", "alexnet", "vgg16"]
    }
}

/// One accelerator's measured row.
struct Row {
    name: String,
    report: PerfReport,
}

fn measure(net_name: &str, profile: SparsityProfile, seed: u64) -> Vec<Row> {
    let workload = Workload::generate(network::by_name(net_name).unwrap(), profile, seed);
    let table = EnergyTable::default();
    Accelerator::comparison_set(Objective::Edp)
        .into_iter()
        .map(|acc| {
            let name = acc.name.clone();
            let mut sim = Simulator::new(acc);
            sim.verify = false; // correctness is pinned by the test suite
            let report = sim.run(&workload).report(&table);
            Row { name, report }
        })
        .collect()
}

/// Runs the experiment and renders its tables.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = String::new();
    let mut summary = Table::new(
        "T1 summary — MOCHA vs next-best accelerator (paper: up to +63 % eff, +42 % thr, -30 % storage)",
        &["network", "profile", "energy eff", "throughput", "storage"],
    );

    for net in networks(cfg) {
        for (pname, profile) in [
            ("nominal", SparsityProfile::NOMINAL),
            ("sparse", SparsityProfile::SPARSE),
        ] {
            let rows = measure(net, profile, cfg.seed);
            let mut t = Table::new(
                format!(
                    "T1 — {net} ({pname} sparsity: input {:.0} %, weights {:.0} %)",
                    profile.input * 100.0,
                    profile.weights * 100.0
                ),
                &[
                    "accelerator",
                    "cycles",
                    "GOPS",
                    "GOPS/W",
                    "storage KB",
                    "DRAM MB",
                ],
            );
            for r in &rows {
                t.row(vec![
                    r.name.clone(),
                    r.report.cycles.to_string(),
                    f(r.report.gops(), 2),
                    f(r.report.gops_per_watt(), 1),
                    kb(r.report.peak_storage_bytes),
                    crate::table::mb(r.report.dram_bytes),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');

            let mocha = &rows[0].report;
            let next_eff = rows[1..]
                .iter()
                .map(|r| r.report.gops_per_watt())
                .fold(f64::MIN, f64::max);
            let next_gops = rows[1..]
                .iter()
                .map(|r| r.report.gops())
                .fold(f64::MIN, f64::max);
            let next_storage = rows[1..]
                .iter()
                .map(|r| r.report.peak_storage_bytes)
                .min()
                .unwrap();
            summary.row(vec![
                net.to_string(),
                pname.to_string(),
                pct(improvement(mocha.gops_per_watt(), next_eff)),
                pct(improvement(mocha.gops(), next_gops)),
                pct(-reduction(
                    mocha.peak_storage_bytes as f64,
                    next_storage as f64,
                )),
            ]);
        }
    }
    summary
        .note("storage column: negative = MOCHA needs less peak scratchpad than the best baseline");
    out.push_str(&summary.render());
    out
}
