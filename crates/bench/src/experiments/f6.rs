//! F6 — Resource morphability: throughput vs PE count. MOCHA re-morphs its
//! mapping as the grid grows; a design-time-fixed mapping saturates once
//! its parallelism mode runs out of independent work units.

use crate::table::{f, Table};
use mocha::core::controller;
use mocha::prelude::*;

use super::ExpConfig;

/// Runs the experiment and renders its table.
pub fn run(cfg: &ExpConfig) -> String {
    // AlexNet conv3 shape (the paper class's mid-network layer).
    let net = if cfg.quick {
        network::single_conv(32, 13, 13, 64, 3, 1, 1)
    } else {
        network::single_conv(256, 13, 13, 384, 3, 1, 1)
    };
    let costs = CodecCostTable::default();
    let energy = EnergyTable::default();
    let est = SparsityEstimate {
        ifmap_sparsity: 0.6,
        ifmap_mean_run: 3.0,
        kernel_sparsity: 0.3,
        ofmap_sparsity: 0.5,
        ofmap_mean_run: 2.0,
    };

    let mut t = Table::new(
        "F6 — throughput vs PE count on an AlexNet-conv3-shaped layer (GOPS)",
        &["PEs", "mocha", "fixed-mapping", "mocha config"],
    );
    let gops = |cycles: u64| {
        2.0 * net.total_macs() as f64 / (cycles as f64 / (energy.clock_ghz * 1e9)) / 1e9
    };
    for grid in [2usize, 4, 6, 8, 12, 16] {
        let mut fm = FabricConfig::mocha();
        fm.pe_rows = grid;
        fm.pe_cols = grid;
        let pm = PlanContext {
            fabric: &fm,
            codec_costs: &costs,
            energy: &energy,
        };
        let mocha = controller::decide(
            &pm,
            Policy::Mocha {
                objective: Objective::Throughput,
            },
            net.layers(),
            &est,
            true,
        );

        let mut fb = FabricConfig::baseline();
        fb.pe_rows = grid;
        fb.pe_cols = grid;
        let pb = PlanContext {
            fabric: &fb,
            codec_costs: &costs,
            energy: &energy,
        };
        let fixed = controller::decide(&pb, Policy::TilingOnly, net.layers(), &est, true);

        t.row(vec![
            (grid * grid).to_string(),
            f(gops(mocha.plan.cycles), 1),
            f(gops(fixed.plan.cycles), 1),
            mocha.morph.to_string(),
        ]);
    }
    t.note("fixed design keeps inter-fmap mapping chosen at design time; MOCHA re-partitions the grid per size");
    t.render()
}
