//! A2 (ablation) — loop order: weight-stationary vs input-stationary
//! traversal of the same tiling. WS re-fetches input windows once per
//! output-channel block; IS re-fetches kernel blocks once per spatial tile —
//! so which wins flips with the kernel-bytes : ifmap-bytes ratio across the
//! network (early convs are ifmap-heavy, fc layers are kernel-heavy).

use crate::table::{mb, Table};
use mocha::core::exec::{default_morph, execute_layer, ExecContext};
use mocha::prelude::*;

use super::ExpConfig;

/// Runs the ablation and renders its table.
pub fn run(cfg: &ExpConfig) -> String {
    let net_name = if cfg.quick { "tiny" } else { "alexnet" };
    let net = network::by_name(net_name).unwrap();
    let workload = Workload::generate(net.clone(), SparsityProfile::NOMINAL, cfg.seed);
    let fabric = FabricConfig::mocha();
    let costs = CodecCostTable::default();
    let ctx = ExecContext {
        fabric: &fabric,
        codec_costs: &costs,
    };

    let mut t = Table::new(
        format!("A2 — loop-order ablation on {net_name}: DRAM traffic (MB) of the same tiling under WS vs IS"),
        &["layer", "ws dram", "is dram", "ws cyc", "is cyc", "winner"],
    );

    let mut current = workload.input.clone();
    for (i, layer) in net.layers().iter().enumerate() {
        let base = default_morph(layer);
        let ws = MorphConfig {
            loop_order: LoopOrder::WeightStationary,
            ..base
        };
        let is = MorphConfig {
            loop_order: LoopOrder::InputStationary,
            ..base
        };
        let rw = execute_layer(
            &ctx,
            layer,
            &current,
            workload.kernels[i].as_ref(),
            &ws,
            true,
        );
        let ri = execute_layer(
            &ctx,
            layer,
            &current,
            workload.kernels[i].as_ref(),
            &is,
            true,
        );
        match (rw, ri) {
            (Ok(rw), Ok(ri)) => {
                assert_eq!(rw.output, ri.output);
                let winner = if rw.cycles <= ri.cycles { "ws" } else { "is" };
                t.row(vec![
                    layer.name.clone(),
                    mb(rw.events.dram_bytes()),
                    mb(ri.events.dram_bytes()),
                    rw.cycles.to_string(),
                    ri.cycles.to_string(),
                    winner.into(),
                ]);
                current = rw.output;
            }
            (Ok(rw), Err(_)) => {
                t.row(vec![
                    layer.name.clone(),
                    mb(rw.events.dram_bytes()),
                    "-".into(),
                    rw.cycles.to_string(),
                    "infeasible".into(),
                    "ws".into(),
                ]);
                current = rw.output;
            }
            (Err(_), Ok(ri)) => {
                t.row(vec![
                    layer.name.clone(),
                    "-".into(),
                    mb(ri.events.dram_bytes()),
                    "infeasible".into(),
                    ri.cycles.to_string(),
                    "is".into(),
                ]);
                current = ri.output;
            }
            (Err(e), Err(_)) => panic!("{}: both orders infeasible: {e}", layer.name),
        }
    }
    t.note("IS pins the input window (good when kernels dominate, e.g. fc); WS pins the kernel block (good when windows dominate)");
    t.render()
}
