//! A1 (ablation) — double vs single buffering: the storage/throughput trade
//! the tile pipeline exposes. Double buffering hides transfer latency behind
//! compute but doubles the streamed-buffer footprint; the controller weighs
//! this per layer, and this ablation quantifies both sides.

use crate::table::{f, kb, pct, Table};
use mocha::core::exec::{default_morph, execute_layer, ExecContext};
use mocha::prelude::*;

use super::ExpConfig;

/// Runs the ablation and renders its table.
pub fn run(cfg: &ExpConfig) -> String {
    let net_name = if cfg.quick { "tiny" } else { "alexnet" };
    let net = network::by_name(net_name).unwrap();
    let workload = Workload::generate(net.clone(), SparsityProfile::NOMINAL, cfg.seed);
    let fabric = FabricConfig::mocha();
    let costs = CodecCostTable::default();
    let ctx = ExecContext {
        fabric: &fabric,
        codec_costs: &costs,
    };

    let mut t = Table::new(
        format!("A1 — buffering ablation on {net_name}: cycles and scratchpad of the same config at depth 1 vs 2"),
        &["layer", "single cyc", "double cyc", "speedup", "single KB", "double KB", "extra storage"],
    );

    let mut current = workload.input.clone();
    for (i, layer) in net.layers().iter().enumerate() {
        let base = default_morph(layer);
        let single = MorphConfig {
            buffering: Buffering::Single,
            ..base
        };
        let double = MorphConfig {
            buffering: Buffering::Double,
            ..base
        };
        let r1 = execute_layer(
            &ctx,
            layer,
            &current,
            workload.kernels[i].as_ref(),
            &single,
            true,
        )
        .unwrap();
        let r2 = execute_layer(
            &ctx,
            layer,
            &current,
            workload.kernels[i].as_ref(),
            &double,
            true,
        )
        .unwrap();
        assert_eq!(r1.output, r2.output);
        t.row(vec![
            layer.name.clone(),
            r1.cycles.to_string(),
            r2.cycles.to_string(),
            f(r1.cycles as f64 / r2.cycles as f64, 2),
            kb(r1.spm_peak as u64),
            kb(r2.spm_peak as u64),
            pct((r2.spm_peak as f64 - r1.spm_peak as f64) / r1.spm_peak as f64),
        ]);
        current = r2.output;
    }
    t.note("speedup > 1 means double buffering helped; extra storage is what it cost");
    t.render()
}
