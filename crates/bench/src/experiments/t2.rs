//! T2 — Area breakdown and overhead: what MOCHA's morphability and
//! compression engines cost in silicon.
//!
//! Paper claim: **26–35 % additional area** over the next-best accelerator.

use crate::table::{f, pct, Table};
use mocha::prelude::*;

use super::ExpConfig;

/// Runs the experiment and renders its tables.
pub fn run(_cfg: &ExpConfig) -> String {
    let table = AreaTable::default();
    let mocha = Accelerator::mocha(Objective::Edp);
    let baseline = Accelerator::tiling_only();

    let ma = mocha.area(&table);
    let ba = baseline.area(&table);

    let mut t = Table::new(
        "T2 — post-synthesis area breakdown (mm², 45 nm-class)",
        &["component", "baseline", "mocha", "delta"],
    );
    let rows: [(&str, f64, f64); 6] = [
        ("PE array", ba.pes_mm2, ma.pes_mm2),
        ("scratchpad SRAM", ba.sram_mm2, ma.sram_mm2),
        ("NoC", ba.noc_mm2, ma.noc_mm2),
        ("DMA", ba.dma_mm2, ma.dma_mm2),
        ("compression engines", ba.codec_mm2, ma.codec_mm2),
        ("control (+morph cfg)", ba.control_mm2, ma.control_mm2),
    ];
    for (name, b, m) in rows {
        t.row(vec![name.into(), f(b, 3), f(m, 3), f(m - b, 3)]);
    }
    t.row(vec![
        "TOTAL".into(),
        f(ba.total_mm2(), 3),
        f(ma.total_mm2(), 3),
        f(ma.total_mm2() - ba.total_mm2(), 3),
    ]);
    let overhead = (ma.total_mm2() - ba.total_mm2()) / ba.total_mm2();
    t.note(format!(
        "area overhead: {} (paper band: +26–35 %)",
        pct(overhead)
    ));

    // Sensitivity: the overhead across fabric sizes.
    let mut s = Table::new(
        "T2b — overhead vs fabric size",
        &["PE grid", "scratchpad KB", "overhead"],
    );
    for (grid, kb) in [(4usize, 64usize), (8, 128), (12, 256), (16, 512)] {
        let mut mf = FabricConfig::mocha();
        mf.pe_rows = grid;
        mf.pe_cols = grid;
        mf.spm_banks = kb / mf.spm_bank_kb;
        // Codec stations scale with the scratchpad column count.
        mf.codec_engines = grid + 2 * mf.dma_engines;
        let mut bf = FabricConfig::baseline();
        bf.pe_rows = grid;
        bf.pe_cols = grid;
        bf.spm_banks = kb / bf.spm_bank_kb;
        let oh = table.overhead(&mf.inventory(), &bf.inventory());
        s.row(vec![format!("{grid}x{grid}"), kb.to_string(), pct(oh)]);
    }

    format!("{}\n{}", t.render(), s.render())
}
