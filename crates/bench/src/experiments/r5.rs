//! R5 (fleet degradation curves) — routing policies across a heterogeneous
//! fleet as per-shard fault rates rise: round-robin vs locality-aware vs
//! power-of-two-choices on R3's open-loop arrival traces.
//!
//! The fleet argument: a router that sees per-shard queue depth (p2c) or
//! per-shard template warmth (locality) keeps goodput and tail latency
//! intact as shards degrade, because quarantines shrink a shard's slot
//! count and a state-blind round-robin keeps feeding the crippled shard
//! its full share. Locality additionally amplifies the PR-7 morph-decision
//! cache at fleet scale: routing a template back to the shard that has
//! already planned it skips the cold first-decision penalty, so the same
//! trace pays fewer cold misses the warmer the routing.
//!
//! Every point replays the *same* seeded trace; per-shard fault timelines
//! derive from one plan with seeds stepped per shard, so shard fault
//! domains are independent but reproducible. The whole table is
//! byte-identical at any `--threads` value and with the decision cache on
//! or off (calibration cycles are cache-invariant).

use crate::table::{f, Table};
use mocha::engine::Engine;
use mocha::fault::FaultPlan;
use mocha::fleet::{run_fleet_open_loop, FleetOpenLoopParams, FleetSpec, RouteKind};
use mocha::obs::names;
use mocha::serve::{traffic, Calibration, ShedPolicy};
use mocha_runtime::{JobSpec, Mix, Priority};

use super::ExpConfig;

/// Runs the fleet degradation sweep and renders its table.
pub fn run(cfg: &ExpConfig) -> String {
    let requests = if cfg.quick { 30_000 } else { 120_000 };
    let tenants = if cfg.quick { 200 } else { 400 };
    // Rates are per-shard faults per Mcycle; horizons run to ~1 Gcycle, so
    // even fractional rates land hundreds of faults — enough to carve slots
    // out of shards without collapsing the whole fleet into noise.
    let rates: &[f64] = if cfg.quick {
        &[0.0, 0.1, 0.2]
    } else {
        &[0.0, 0.02, 0.05, 0.1, 0.2]
    };
    let load = 2.0;
    let mix = Mix::Quick;
    let slots = 4;
    // One big quad instance plus two small ones: heterogeneous enough that
    // routing decisions matter even before the first fault lands.
    let fleet = FleetSpec::parse("preset=quad/preset=mocha,count=2").expect("static spec");

    // Calibrate each template once per distinct shard geometry. With
    // `cfg.cache` one decision cache spans the geometries; measured cycles
    // (and thus the whole table) are identical either way.
    let specs: Vec<JobSpec> = mix
        .templates()
        .iter()
        .map(|(network, profile)| JobSpec {
            network: network.to_string(),
            profile: profile.to_string(),
            objective: mocha::core::Objective::Edp,
            priority: Priority::Normal,
            seed: cfg.seed,
        })
        .collect();
    let mut cache = cfg.cache.then(mocha::core::DecisionCache::new);
    let mut cals: Vec<(mocha::fabric::FabricConfig, Calibration)> = Vec::new();
    for shard in fleet.shards() {
        if cals.iter().any(|(fab, _)| *fab == shard.fabric) {
            continue;
        }
        let cal = match cache.as_mut() {
            Some(c) => Calibration::measure_cached(
                &shard.fabric,
                slots,
                &specs,
                Engine::new(cfg.threads),
                c,
            ),
            None => Calibration::measure(&shard.fabric, slots, &specs, Engine::new(cfg.threads)),
        }
        .expect("mix templates validate");
        cals.push((shard.fabric, cal));
    }
    // SLO and cold penalty scale with the *slowest* geometry's calibrated
    // mean, so they track the cost model instead of being magic numbers.
    let slowest = cals
        .iter()
        .map(|(_, c)| c.mean_service())
        .max()
        .expect("fleet is non-empty");
    let slo = 4 * slowest;
    let cold_penalty = slowest / 4;

    let trace = traffic::generate(&traffic::OpenLoopConfig {
        requests,
        tenants,
        load,
        seed: cfg.seed,
        mix,
        slo: Some(slo),
    });
    let services: Vec<Vec<u64>> = fleet
        .shards()
        .iter()
        .map(|sh| {
            let cal = &cals
                .iter()
                .find(|(fab, _)| *fab == sh.fabric)
                .expect("calibrated above")
                .1;
            trace.iter().map(|r| cal.service(&r.spec)).collect()
        })
        .collect();

    let mut t = Table::new(
        format!(
            "R5 — fleet degradation, {} shards / {requests} requests per point, SLO {slo} \
             cycles, cold penalty {cold_penalty}: routing policies vs per-shard fault rate",
            fleet.len(),
        ),
        &[
            "rate", "route", "done", "failed", "in-SLO", "goodput", "p99 kcyc", "rebal", "cold",
            "warm", "quar",
        ],
    );

    // One task per (rate, policy) point; every point replays the same
    // trace. Shards merge in sweep order, so the table is byte-identical
    // for every `cfg.threads` value.
    let points: Vec<(f64, RouteKind)> = rates
        .iter()
        .flat_map(|&rate| RouteKind::all().map(|route| (rate, route)))
        .collect();
    let (reports, rec) = Engine::new(cfg.threads).map_recorded(points, |_, (rate, route), rec| {
        let faults = (rate > 0.0).then(|| {
            FaultPlan::parse(&format!("rate={rate},seed=5,transient=0.3")).expect("static spec")
        });
        let params = FleetOpenLoopParams {
            fleet: &fleet,
            slots,
            shed: ShedPolicy::None,
            route,
            route_seed: cfg.seed,
            faults: faults.as_ref(),
            cold_penalty,
            record_spans: false,
        };
        let (report, _) = run_fleet_open_loop(&params, &trace, &services, rec);
        (rate, route, report)
    });

    for (rate, _, r) in &reports {
        t.row(vec![
            f(*rate, 2),
            r.route.clone(),
            r.completed.to_string(),
            r.failed.to_string(),
            r.in_slo.to_string(),
            f(r.goodput_per_mcycle(), 2),
            f(r.latency_percentile(99.0) as f64 / 1e3, 1),
            r.rebalanced.to_string(),
            r.cold_misses.to_string(),
            r.warm_hits.to_string(),
            r.quarantined.to_string(),
        ]);
    }

    // Claim 1: state-aware routing beats round-robin on goodput AND p99 at
    // every nonzero fault rate. Claim 2: quarantine-triggered re-balancing
    // is visible (every policy migrates jobs) at every nonzero rate.
    // Claim 3: locality pays fewer cold decision-cache misses than
    // round-robin at every rate — the fleet-level cache amplification.
    let mut p2c_wins = true;
    let mut locality_wins = true;
    let mut rebalance_visible = true;
    let mut locality_warmer = true;
    for chunk in reports.chunks(RouteKind::all().len()) {
        let (rate, _, rr) = &chunk[0];
        let (_, _, loc) = &chunk[1];
        let (_, _, p2c) = &chunk[2];
        // At rate 0 every policy pays at most templates×shards cold
        // misses, so equality is possible; under faults the warm sets keep
        // getting cleared and locality must pay strictly fewer.
        locality_warmer &= if *rate == 0.0 {
            loc.cold_misses <= rr.cold_misses
        } else {
            loc.cold_misses < rr.cold_misses
        };
        if *rate == 0.0 {
            continue;
        }
        p2c_wins &= p2c.goodput_per_mcycle() > rr.goodput_per_mcycle()
            && p2c.latency_percentile(99.0) < rr.latency_percentile(99.0);
        locality_wins &= loc.goodput_per_mcycle() > rr.goodput_per_mcycle()
            && loc.latency_percentile(99.0) < rr.latency_percentile(99.0);
        rebalance_visible &= chunk.iter().all(|(_, _, r)| r.rebalanced > 0);
    }

    t.note(format!(
        "p2c {} round-robin and locality {} round-robin on goodput AND SLO p99 at every \
         nonzero per-shard fault rate",
        if p2c_wins { "beats" } else { "does NOT beat" },
        if locality_wins {
            "beats"
        } else {
            "does NOT beat"
        },
    ));
    t.note(format!(
        "quarantine-triggered re-balancing {} at every nonzero rate: evicted queued jobs \
         re-route live onto healthy shards",
        if rebalance_visible {
            "is visible"
        } else {
            "is NOT visible"
        },
    ));
    t.note(format!(
        "locality-aware routing {} the morph-decision cache at fleet scale: fewer cold \
         first-decision penalties than round-robin at every rate",
        if locality_warmer {
            "amplifies"
        } else {
            "does NOT amplify"
        },
    ));
    t.note(
        "same seeded heavy-tailed trace for every point; per-shard fault timelines derive \
         from one plan with seeds stepped per shard; goodput = in-SLO completions per \
         Mcycle of horizon",
    );
    t.note(format!(
        "r5-smoke {{\"shards\":{},\"points\":{},\"routed\":{},\"rebalanced\":{},\
         \"cold\":{},\"warm\":{},\"p2c_wins\":{},\"locality_wins\":{},\
         \"rebalance_visible\":{},\"locality_warmer\":{}}}",
        fleet.len(),
        reports.len(),
        rec.counter(names::FLEET_ROUTED),
        rec.counter(names::FLEET_REBALANCED),
        rec.counter(names::FLEET_COLD_MISSES),
        rec.counter(names::FLEET_WARM_HITS),
        u64::from(p2c_wins),
        u64::from(locality_wins),
        u64::from(rebalance_visible),
        u64::from(locality_warmer),
    ));
    t.render()
}
