//! F8 — The compression crossover: net energy gain vs sparsity on one conv
//! layer. Below the crossover the codec's own cost (and ZRLE's worst-case
//! inflation) makes compression lose — the controller must auto-disable it,
//! which this experiment also verifies column-by-column.

use crate::table::{pct, Table};
use mocha::core::exec;
use mocha::model::gen;
use mocha::prelude::*;

use super::ExpConfig;

/// Runs the experiment and renders its table.
pub fn run(cfg: &ExpConfig) -> String {
    let net = if cfg.quick {
        network::single_conv(16, 32, 32, 32, 3, 1, 1)
    } else {
        network::single_conv(32, 64, 64, 64, 3, 1, 1)
    };
    let layer = &net.layers()[0];
    let fabric = FabricConfig::mocha();
    let costs = CodecCostTable::default();
    let energy = EnergyTable::default();
    let pctx = PlanContext {
        fabric: &fabric,
        codec_costs: &costs,
        energy: &energy,
    };
    let ectx = ExecContext {
        fabric: &fabric,
        codec_costs: &costs,
    };

    let mut t = Table::new(
        "F8 — compression crossover: energy of forced-on vs off, and the controller's choice",
        &[
            "sparsity",
            "forced-on Δenergy",
            "controller choice",
            "controller Δenergy",
        ],
    );

    for pct_s in [0, 5, 10, 15, 20, 30, 40, 60, 80, 90] {
        let s = pct_s as f64 / 100.0;
        let mut rng = gen::rng(cfg.seed + pct_s as u64);
        let input = gen::clustered_activations(layer.input, s * 0.8, 6, &mut rng);
        let kernel = gen::kernel(layer.kernel_shape().unwrap(), s, &mut rng);
        let stats = mocha::model::stats::analyze(input.data());
        let est = SparsityEstimate {
            ifmap_sparsity: stats.sparsity(),
            ifmap_mean_run: stats.mean_zero_run(),
            kernel_sparsity: kernel.sparsity(),
            ofmap_sparsity: 0.5,
            ofmap_mean_run: 2.0,
        };

        // Baseline: best uncompressed config.
        let off = mocha::core::controller::decide(
            &pctx,
            Policy::MochaNoCompression {
                objective: Objective::Energy,
            },
            net.layers(),
            &est,
            true,
        );
        let off_run =
            exec::execute_layer(&ectx, layer, &input, Some(&kernel), &off.morph, true).unwrap();
        let e_off = energy.price(&off_run.events).total_pj();

        // Forced-on: same config with full compression (or the nearest
        // feasible config if the raw tiling no longer fits).
        let forced = MorphConfig {
            compression: CompressionChoice::ON,
            ..off.morph
        };
        let e_forced = exec::execute_layer(&ectx, layer, &input, Some(&kernel), &forced, true)
            .map(|r| energy.price(&r.events).total_pj());

        // The controller's own pick.
        let auto = mocha::core::controller::decide(
            &pctx,
            Policy::Mocha {
                objective: Objective::Energy,
            },
            net.layers(),
            &est,
            true,
        );
        let auto_run =
            exec::execute_layer(&ectx, layer, &input, Some(&kernel), &auto.morph, true).unwrap();
        let e_auto = energy.price(&auto_run.events).total_pj();
        assert_eq!(
            auto_run.output, off_run.output,
            "compression changed results"
        );

        t.row(vec![
            format!("{pct_s} %"),
            match e_forced {
                Ok(e) => pct((e - e_off) / e_off),
                Err(_) => "infeasible".into(),
            },
            auto.morph.compression.to_string(),
            pct((e_auto - e_off) / e_off),
        ]);
    }
    t.note("positive Δ = compression costs energy; the controller's Δ must never be materially positive (it can opt out)");
    t.render()
}
