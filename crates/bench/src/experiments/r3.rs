//! R3 (open-loop serving) — goodput and tail latency vs offered load:
//! SLO-aware load shedding against unbounded queueing on the same seeded
//! heavy-tailed trace.
//!
//! The morphing argument applied to serving: a fabric carved into tenant
//! slots has a *known* per-template service time (calibrated once on one
//! slot), so the admission controller can predict at arrival whether a
//! request will finish inside its deadline — and shed the doomed ones with
//! an explicit response instead of letting queues grow without bound. Past
//! saturation an unbounded queue still reports near-100 % utilization
//! while *goodput* (in-SLO completions per cycle) collapses: everything
//! completes, arbitrarily late. Shedding keeps the served fraction inside
//! the SLO, degrading goodput gracefully instead of falling off a cliff.

use crate::table::{f, Table};
use mocha::engine::Engine;
use mocha::obs::{names, WindowSpec};
use mocha::serve::{
    run_open_loop, traffic, windows_from_open_loop, Calibration, OpenLoopParams, OpenLoopReport,
    ShedPolicy,
};
use mocha_runtime::{JobSpec, Mix, Priority};

use super::ExpConfig;

/// Runs the offered-load sweep and renders its table.
pub fn run(cfg: &ExpConfig) -> String {
    let (requests, tenants) = if cfg.quick {
        (100_000, 200)
    } else {
        (200_000, 400)
    };
    let loads: &[f64] = if cfg.quick {
        &[0.5, 1.0, 2.0, 4.0]
    } else {
        &[0.4, 0.8, 1.2, 1.6, 2.0, 3.0, 4.0]
    };
    let mix = Mix::Quick;
    let fabric = mocha::fabric::FabricConfig::mocha_quad();
    let slots = 4;

    // Calibrate each template of the tenant population once, sharded over
    // the engine pool; the SLO is a fixed multiple of the mean calibrated
    // service time, so it scales with the cost model instead of being a
    // magic cycle count.
    let specs: Vec<JobSpec> = mix
        .templates()
        .iter()
        .map(|(network, profile)| JobSpec {
            network: network.to_string(),
            profile: profile.to_string(),
            objective: mocha::core::Objective::Edp,
            priority: Priority::Normal,
            seed: cfg.seed,
        })
        .collect();
    // With `cfg.cache` the calibration shares one decision cache across
    // templates; measured cycles (and thus the whole table) are identical.
    let cal = if cfg.cache {
        let mut cache = mocha::core::DecisionCache::new();
        Calibration::measure_cached(&fabric, slots, &specs, Engine::new(cfg.threads), &mut cache)
    } else {
        Calibration::measure(&fabric, slots, &specs, Engine::new(cfg.threads))
    }
    .expect("mix templates validate");
    let slo = 4 * cal.mean_service();

    let mut t = Table::new(
        format!(
            "R3 — open-loop serving, {requests} requests / {tenants} tenants per point, \
             SLO {slo} cycles: deadline shedding vs unbounded queueing"
        ),
        &[
            "load", "policy", "offered", "admitted", "shed", "done", "in-SLO", "goodput",
            "p50 kcyc", "p99 kcyc", "util %",
        ],
    );

    // One task per (load, policy) point. The trace is a pure function of
    // its config, so both policies at a load replay the *same* arrivals;
    // shards merge in sweep order, so the table is byte-identical for
    // every `cfg.threads` value.
    let points: Vec<(f64, ShedPolicy)> = loads
        .iter()
        .flat_map(|&load| [(load, ShedPolicy::None), (load, ShedPolicy::Deadline)])
        .collect();
    let (reports, rec) = Engine::new(cfg.threads).map_recorded(points, |_, (load, shed), rec| {
        let trace = traffic::generate(&traffic::OpenLoopConfig {
            requests,
            tenants,
            load,
            seed: cfg.seed,
            mix,
            slo: Some(slo),
        });
        let services: Vec<u64> = trace.iter().map(|r| cal.service(&r.spec)).collect();
        let params = OpenLoopParams {
            fabric: &fabric,
            slots,
            shed,
            faults: None,
            record_spans: false,
        };
        let (report, outcomes) = run_open_loop(&params, &trace, &services, rec);
        // Windowed SLO telemetry for the unbounded-queueing runs: the
        // multi-window burn-rate pair is the *leading* indicator the
        // whole-run goodput column can only show after the fact.
        let burn = matches!(shed, ShedPolicy::None).then(|| {
            let m = windows_from_open_loop(
                WindowSpec::tumbling(8 * slo),
                &trace,
                &outcomes,
                &report.fault_log,
                shed,
            );
            let (fast, slow) = m.peak_burn();
            (m.alerts(), fast, slow, m.first_alert_cycle())
        });
        (load, report, burn)
    });

    let mut shed_wins_past_saturation = true;
    for pair in reports.chunks(2) {
        let (load, queueing, _) = &pair[0];
        let (_, shedding, _) = &pair[1];
        row(&mut t, *load, queueing);
        row(&mut t, *load, shedding);
        if *load > 1.0 {
            shed_wins_past_saturation &= shedding.goodput_per_mcycle()
                > queueing.goodput_per_mcycle()
                && shedding.latency_percentile(99.0) < queueing.latency_percentile(99.0);
        }
    }

    t.note(format!(
        "deadline shedding {} unbounded queueing on goodput AND p99 at every load past saturation",
        if shed_wins_past_saturation {
            "beats"
        } else {
            "does NOT beat"
        }
    ));
    t.note(
        "same seeded heavy-tailed (bounded-Pareto) trace for both policies at each load; \
         goodput = in-SLO completions per Mcycle of horizon; \
         service times calibrated per template on one tenant slot",
    );
    t.note(format!(
        "obs totals over the sweep: {} requests offered, {} admitted, {} shed, \
         {} deadline misses",
        rec.counter(names::SERVE_REQUESTS),
        rec.counter(names::SERVE_ADMITTED),
        rec.counter(names::SERVE_SHED),
        rec.counter(names::SERVE_DEADLINE_MISSES),
    ));

    // Windowed burn-rate section: for the *unbounded queueing* runs, the
    // fast/slow burn pair over tumbling 8×SLO windows raises its alert
    // partway into the overloaded runs — an operator watching `metrics`
    // sees the collapse long before the whole-run goodput column exists.
    let mut w = Table::new(
        format!(
            "R3w — windowed SLO burn (unbounded queueing, tumbling {} cycle windows): \
             the burn-rate pair is a leading indicator of the goodput knee",
            8 * slo
        ),
        &[
            "load",
            "goodput",
            "burn fast",
            "burn slow",
            "alerts",
            "1st alert kcyc",
            "% of run",
        ],
    );
    let mut calm_below_saturation = true;
    let mut alert_past_saturation = true;
    let mut alert_leads = true;
    for (load, report, burn) in &reports {
        let Some((alerts, peak_fast, peak_slow, first_alert)) = burn else {
            continue;
        };
        let pct_of_run = first_alert.map(|c| 100.0 * c as f64 / report.horizon as f64);
        w.row(vec![
            f(*load, 1),
            f(report.goodput_per_mcycle(), 2),
            f(*peak_fast, 2),
            f(*peak_slow, 2),
            alerts.to_string(),
            first_alert.map_or("-".into(), |c| f(c as f64 / 1e3, 1)),
            pct_of_run.map_or("-".into(), |p| f(p, 1)),
        ]);
        if *load < 1.0 {
            calm_below_saturation &= *alerts == 0;
        } else if *load > 1.0 {
            alert_past_saturation &= *alerts > 0;
            // "Leading": the first alert lands in the front half of the run,
            // well before the aggregate goodput number is even computable.
            alert_leads &= pct_of_run.is_some_and(|p| p < 50.0);
        }
    }
    w.note(format!(
        "burn-rate alert {} the goodput knee: quiet below saturation ({}), firing in the \
         first half of every overloaded run ({})",
        if calm_below_saturation && alert_past_saturation && alert_leads {
            "fires before"
        } else {
            "does NOT fire before"
        },
        calm_below_saturation,
        alert_past_saturation && alert_leads,
    ));
    format!("{}\n{}", t.render(), w.render())
}

fn row(t: &mut Table, load: f64, r: &OpenLoopReport) {
    t.row(vec![
        f(load, 1),
        r.policy.clone(),
        r.offered.to_string(),
        r.admitted.to_string(),
        r.shed.to_string(),
        r.completed.to_string(),
        r.in_slo.to_string(),
        f(r.goodput_per_mcycle(), 2),
        f(r.latency_percentile(50.0) as f64 / 1e3, 1),
        f(r.latency_percentile(99.0) as f64 / 1e3, 1),
        f(100.0 * r.utilization(), 1),
    ]);
}
