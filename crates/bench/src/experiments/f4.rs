//! F4 — Per-layer on-chip storage footprint with and without compression
//! (paper claim: up to 30 % less storage). Both sides run under the Storage
//! objective so each is doing its best at the metric being compared.

use crate::table::{kb, pct, Table};
use mocha::prelude::*;
use std::collections::HashMap;

use super::ExpConfig;

fn per_layer_storage(acc: Accelerator, workload: &Workload) -> HashMap<String, usize> {
    let mut sim = Simulator::new(acc);
    sim.verify = false;
    let run = sim.run(workload);
    let mut map = HashMap::new();
    for g in &run.groups {
        for l in &g.layers {
            map.insert(l.clone(), g.spm_peak);
        }
    }
    map
}

/// Runs the experiment and renders its tables.
pub fn run(cfg: &ExpConfig) -> String {
    let nets: Vec<&str> = if cfg.quick {
        vec!["tiny"]
    } else {
        vec!["alexnet", "vgg16"]
    };
    let mut out = String::new();
    for net_name in nets {
        let net = network::by_name(net_name).unwrap();
        let workload = Workload::generate(net.clone(), SparsityProfile::SPARSE, cfg.seed);
        let with = per_layer_storage(Accelerator::mocha(Objective::Storage), &workload);
        let without = per_layer_storage(
            Accelerator::mocha_no_compression(Objective::Storage),
            &workload,
        );

        let mut t = Table::new(
            format!("F4 — per-layer scratchpad footprint on {net_name} (KB, Storage objective)"),
            &["layer", "uncompressed", "compressed", "saving"],
        );
        let mut peak_with = 0usize;
        let mut peak_without = 0usize;
        for layer in net.layers() {
            let w = with[&layer.name];
            let wo = without[&layer.name];
            peak_with = peak_with.max(w);
            peak_without = peak_without.max(wo);
            t.row(vec![
                layer.name.clone(),
                kb(wo as u64),
                kb(w as u64),
                pct(-reduction(w as f64, wo as f64)),
            ]);
        }
        t.row(vec![
            "PEAK".into(),
            kb(peak_without as u64),
            kb(peak_with as u64),
            pct(-reduction(peak_with as f64, peak_without as f64)),
        ]);
        t.note("paper claim: up to 30 % less storage; negative saving = compression reduced the footprint");
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}
