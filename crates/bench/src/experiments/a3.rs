//! A3 (ablation) — hybrid parallelism granularity: sweeping the number of
//! output-channel groups the PE grid is split into, between the pure
//! intra-fmap (1 group) and pure inter-fmap (PEs groups) extremes, on layer
//! shapes that favour different points. Motivates why `fmap_groups` is a
//! morphable parameter rather than a design-time constant.

use crate::table::{f, Table};
use mocha::core::plan::plan_layer;
use mocha::prelude::*;

use super::ExpConfig;

/// Runs the ablation and renders its table.
pub fn run(cfg: &ExpConfig) -> String {
    let shapes: Vec<(&str, Network)> = if cfg.quick {
        vec![
            ("wide 4x64x64", network::single_conv(3, 64, 64, 4, 3, 1, 1)),
            (
                "square 16x16x16",
                network::single_conv(16, 16, 16, 16, 3, 1, 1),
            ),
            ("deep 128x4x4", network::single_conv(64, 4, 4, 128, 3, 1, 1)),
        ]
    } else {
        vec![
            (
                "conv1-like 96x55x55",
                network::single_conv(3, 227, 227, 96, 11, 4, 0),
            ),
            (
                "conv3-like 384x13x13",
                network::single_conv(256, 13, 13, 384, 3, 1, 1),
            ),
            (
                "deep 512x4x4",
                network::single_conv(256, 4, 4, 512, 3, 1, 1),
            ),
        ]
    };

    let fabric = FabricConfig::mocha();
    let costs = CodecCostTable::default();
    let energy = EnergyTable::default();
    let ctx = PlanContext {
        fabric: &fabric,
        codec_costs: &costs,
        energy: &energy,
    };
    let est = SparsityEstimate {
        ifmap_sparsity: 0.6,
        ifmap_mean_run: 3.0,
        kernel_sparsity: 0.3,
        ofmap_sparsity: 0.5,
        ofmap_mean_run: 2.0,
    };

    let mut t = Table::new(
        "A3 — hybrid-parallelism granularity: cycles (millions) vs fmap_groups on a 64-PE grid",
        &[
            "layer shape",
            "intra(=1)",
            "hyb2",
            "hyb4",
            "hyb8",
            "hyb16",
            "inter(=64)",
            "best",
        ],
    );
    for (name, net) in shapes {
        let layer = &net.layers()[0];
        let base = mocha::core::exec::default_morph(layer);
        let modes: Vec<(String, Parallelism)> = vec![
            ("intra".into(), Parallelism::IntraFmap),
            ("hyb2".into(), Parallelism::Hybrid { fmap_groups: 2 }),
            ("hyb4".into(), Parallelism::Hybrid { fmap_groups: 4 }),
            ("hyb8".into(), Parallelism::Hybrid { fmap_groups: 8 }),
            ("hyb16".into(), Parallelism::Hybrid { fmap_groups: 16 }),
            ("inter".into(), Parallelism::InterFmap),
        ];
        let mut cells = vec![name.to_string()];
        let mut best = ("?".to_string(), u64::MAX);
        for (mname, mode) in &modes {
            let m = MorphConfig {
                parallelism: *mode,
                ..base
            };
            match plan_layer(&ctx, layer, &m, &est, true) {
                Ok(p) => {
                    if p.cycles < best.1 {
                        best = (mname.clone(), p.cycles);
                    }
                    cells.push(f(p.cycles as f64 / 1e6, 2));
                }
                Err(_) => cells.push("-".into()),
            }
        }
        cells.push(best.0);
        t.row(cells);
    }
    t.note("no single granularity wins all shapes — the morphing controller picks per layer");
    t.render()
}
