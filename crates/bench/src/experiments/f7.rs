//! F7 — DRAM-access reduction of the optimizations alone and cascaded:
//! tiling-only → + morphable fusion/parallelism (mocha-nc) → + compression
//! (full mocha). The cascade is the paper's point: the optimizations
//! compose.

use crate::table::{mb, pct, Table};
use mocha::prelude::*;

use super::ExpConfig;

fn dram(acc: Accelerator, workload: &Workload) -> u64 {
    let mut sim = Simulator::new(acc);
    sim.verify = false;
    sim.run(workload).events().dram_bytes()
}

/// Runs the experiment and renders its table.
pub fn run(cfg: &ExpConfig) -> String {
    let nets: Vec<&str> = if cfg.quick {
        vec!["tiny", "lenet5"]
    } else {
        vec!["lenet5", "alexnet"]
    };
    let mut t = Table::new(
        "F7 — DRAM traffic as optimizations cascade (MB)",
        &[
            "network",
            "tiling-only",
            "+fusion",
            "+morph (mocha-nc)",
            "+compression (mocha)",
            "total reduction",
        ],
    );
    for net_name in nets {
        let workload = Workload::generate(
            network::by_name(net_name).unwrap(),
            SparsityProfile::SPARSE,
            cfg.seed,
        );
        let tiling = dram(Accelerator::tiling_only(), &workload);
        let fusion = dram(Accelerator::fusion_only(), &workload);
        let nc = dram(
            Accelerator::mocha_no_compression(Objective::Energy),
            &workload,
        );
        let full = dram(Accelerator::mocha(Objective::Energy), &workload);
        t.row(vec![
            net_name.into(),
            mb(tiling),
            mb(fusion),
            mb(nc),
            mb(full),
            pct(-reduction(full as f64, tiling as f64)),
        ]);
    }
    t.note("each column adds an optimization class; negative = less traffic than tiling-only");
    t.render()
}
