//! F3 — Compression ratio and effective-bandwidth gain vs sparsity, for
//! both codecs and both zero distributions (i.i.d. pruning-style vs
//! clustered ReLU-style). The effective-bandwidth gain of a stream equals
//! its compression ratio (the same wire carries ratio× more raw bytes).

use crate::table::{f, Table};
use mocha::model::gen;
use mocha::model::shape::{KernelShape, TensorShape};
use mocha::prelude::*;

use super::ExpConfig;

/// Runs the experiment and renders its table.
pub fn run(cfg: &ExpConfig) -> String {
    let shape = if cfg.quick {
        TensorShape::new(8, 32, 32)
    } else {
        TensorShape::new(32, 64, 64)
    };
    let kshape = if cfg.quick {
        KernelShape::new(16, 8, 3)
    } else {
        KernelShape::new(64, 32, 3)
    };

    let mut t = Table::new(
        "F3 — compression ratio (= effective bandwidth gain) vs sparsity",
        &[
            "sparsity",
            "zrle iid",
            "zrle clustered",
            "nibble iid",
            "bitmask iid",
            "best-of",
        ],
    );
    for pct in (0..=95).step_by(5) {
        let s = pct as f64 / 100.0;
        let mut rng = gen::rng(cfg.seed + pct as u64);
        let iid = gen::activations(shape, s, &mut rng);
        let clustered = gen::clustered_activations(shape, s * 0.75, 8, &mut rng);
        let kern = gen::kernel(kshape, s, &mut rng);

        let zr_iid = Compressed::encode(Codec::Zrle, iid.data()).ratio();
        let zr_cl = Compressed::encode(Codec::Zrle, clustered.data()).ratio();
        let nb_iid = Compressed::encode(Codec::Nibble, iid.data()).ratio();
        let bm = Compressed::encode(Codec::Bitmask, kern.data()).ratio();
        let best = Compressed::encode(best_codec(iid.data()), iid.data()).ratio();
        t.row(vec![
            format!("{pct} %"),
            f(zr_iid, 2),
            f(zr_cl, 2),
            f(nb_iid, 2),
            f(bm, 2),
            f(best.max(1.0), 2),
        ]);
    }
    t.note("zrle inflates below ~50 % i.i.d. sparsity (2 B/record); best-of never drops below 1.0 because the controller can always pick `none`");
    t.render()
}
