//! R2 (fault recovery) — graceful degradation under injected faults:
//! goodput, tail latency and energy efficiency vs fault rate, with
//! quarantine-and-remorph recovery against a fail-stop baseline on the same
//! arrival trace *and* the same seeded fault schedule.
//!
//! The morphing argument applied to reliability: a fabric that can re-carve
//! its leases at group boundaries can also carve *around* a permanently
//! faulty region and keep serving degraded, while a fail-stop fabric
//! restarts every job a permanent fault touches until its retry budget
//! dies. Fail-stop sheds load — failed jobs free the (undamaged) fabric for
//! the survivors — so the two modes are compared on a *common time base*:
//! completions within the longer of the two episodes at each rate, and a
//! p99 that counts a failed job as never completing (`inf`).

use crate::table::{f, Table};
use mocha::engine::Engine;
use mocha::obs::names;
use mocha_runtime::{
    generate, run_with, FaultMode, FaultPlan, Mix, RuntimeConfig, RuntimeReport, TrafficConfig,
};

use super::ExpConfig;

/// Runs the fault-rate sweep and renders its table.
pub fn run(cfg: &ExpConfig) -> String {
    let jobs = if cfg.quick { 8 } else { 16 };
    let rates: &[f64] = if cfg.quick {
        &[0.0, 8.0, 15.0]
    } else {
        &[0.0, 8.0, 12.0, 15.0, 18.0]
    };

    let mut t = Table::new(
        format!(
            "R2 — fault injection, {jobs} jobs/point on the quad fabric: \
             quarantine-and-remorph recovery vs fail-stop"
        ),
        &[
            "flt/Mcyc", "mode", "done", "retried", "failed", "goodput", "p50 kcyc", "p99 kcyc",
            "util %", "GOPS/W",
        ],
    );

    // One task per (rate, mode) point: the zero-rate point runs once (both
    // modes are identical without faults — the fault layer is inert), each
    // nonzero rate runs both recovery modes over the *same* arrival trace
    // and the *same* seeded fault schedule. Shards merge in sweep order, so
    // the table is byte-identical for every `cfg.threads` value.
    let points: Vec<(f64, Option<FaultMode>)> = rates
        .iter()
        .flat_map(|&rate| {
            if rate == 0.0 {
                vec![(rate, None)]
            } else {
                vec![
                    (rate, Some(FaultMode::Quarantine)),
                    (rate, Some(FaultMode::FailStop)),
                ]
            }
        })
        .collect();
    let (reports, rec) = Engine::new(cfg.threads).map_recorded(points, |_, (rate, mode), rec| {
        let traffic = TrafficConfig {
            jobs,
            load: 2.0,
            seed: cfg.seed,
            mix: Mix::Quick,
        };
        let subs = generate(&traffic);
        let rt = RuntimeConfig {
            faults: mode.map(|mode| FaultPlan {
                rate_per_mcycle: rate,
                seed: cfg.seed,
                mode,
                ..FaultPlan::default()
            }),
            cache: cfg.cache,
            ..RuntimeConfig::default()
        };
        (rate, mode, run_with(&rt, &subs, rec))
    });

    let mut quarantine_wins_everywhere = true;
    let mut i = 0;
    while i < reports.len() {
        let (rate, mode, report) = &reports[i];
        match mode {
            None => {
                row(&mut t, *rate, "none", report, report.horizon);
                i += 1;
            }
            Some(_) => {
                let (_, _, q) = &reports[i];
                let (_, _, s) = &reports[i + 1];
                // Common time base: completions within the longer episode.
                let base = q.horizon.max(s.horizon);
                row(&mut t, *rate, "quarantine", q, base);
                row(&mut t, *rate, "failstop", s, base);
                quarantine_wins_everywhere &= goodput(q, base) > goodput(s, base)
                    && match (slo_p99(q), slo_p99(s)) {
                        (Some(qp), Some(sp)) => qp < sp,
                        (Some(_), None) => true,
                        _ => false,
                    };
                i += 2;
            }
        }
    }

    t.note(format!(
        "quarantine-and-remorph {} fail-stop on goodput AND p99 at every nonzero fault rate",
        if quarantine_wins_everywhere {
            "beats"
        } else {
            "does NOT beat"
        }
    ));
    t.note(
        "same seeded arrival trace and fault schedule for both modes at each rate; \
         goodput = completions per Mcycle of the rate's longer episode; \
         p99 counts a failed job as never completing (inf)",
    );
    t.note(format!(
        "obs totals over the sweep: {} faults injected, {} retries, \
         {} quarantines, {} restarts, {} executed cycles lost",
        rec.counter(names::FAULT_INJECTED),
        rec.counter(names::FAULT_RETRIES),
        rec.counter(names::FAULT_QUARANTINED),
        rec.counter(names::FAULT_RESTARTS),
        rec.counter(names::FAULT_LOST_CYCLES),
    ));
    t.render()
}

/// Completed jobs per million cycles of the given time base.
fn goodput(report: &RuntimeReport, base: u64) -> f64 {
    if base == 0 {
        return 0.0;
    }
    report.completed() as f64 * 1e6 / base as f64
}

/// p99 latency treating failed jobs as never completing: with the small job
/// populations swept here, nearest-rank p99 is the worst job, so any
/// failure makes it unbounded (`None`).
fn slo_p99(report: &RuntimeReport) -> Option<u64> {
    (report.failed == 0).then(|| report.latency_percentile(99.0))
}

fn row(t: &mut Table, rate: f64, mode: &str, report: &RuntimeReport, base: u64) {
    t.row(vec![
        f(rate, 0),
        mode.to_string(),
        report.completed().to_string(),
        report.retried.to_string(),
        report.failed.to_string(),
        f(goodput(report, base), 2),
        f(report.latency_percentile(50.0) as f64 / 1e3, 1),
        match slo_p99(report) {
            Some(p) => f(p as f64 / 1e3, 1),
            None => "inf".to_string(),
        },
        f(100.0 * report.utilization(), 1),
        f(report.gops_per_watt(), 1),
    ]);
}
