//! Compression study: sweep activation sparsity on one conv layer and watch
//! (a) the codec ratios, (b) the DRAM traffic, and (c) the crossover where
//! the morphing controller turns compression off because dense data would
//! inflate through the codec.
//!
//! Run with: `cargo run --release --example compression_study`

use mocha::model::gen;
use mocha::prelude::*;

fn main() {
    let net = network::single_conv(32, 64, 64, 64, 3, 1, 1);
    let layer = &net.layers()[0];
    let energy_table = EnergyTable::default();
    let costs = CodecCostTable::default();
    let fabric = FabricConfig::mocha();

    println!(
        "{:>9} | {:>9} {:>9} | {:>12} {:>12} | {:>9} | controller's codec choice",
        "sparsity", "zrle", "bitmask", "dram raw", "dram mocha", "energy"
    );

    for pct in [0, 10, 20, 30, 40, 50, 60, 70, 80, 90] {
        let sparsity = pct as f64 / 100.0;
        let mut rng = gen::rng(100 + pct as u64);
        let input = gen::clustered_activations(layer.input, sparsity * 0.8, 6, &mut rng);
        let kernel = gen::kernel(layer.kernel_shape().unwrap(), sparsity, &mut rng);

        // Raw codec ratios on the actual tensors.
        let zr = Compressed::encode(Codec::Zrle, input.data()).ratio();
        let bm = Compressed::encode(Codec::Bitmask, kernel.data()).ratio();

        // What the controller decides, given measured statistics.
        let stats = mocha::model::stats::analyze(input.data());
        let est = SparsityEstimate {
            ifmap_sparsity: stats.sparsity(),
            ifmap_mean_run: stats.mean_zero_run(),
            kernel_sparsity: kernel.sparsity(),
            ofmap_sparsity: 0.5,
            ofmap_mean_run: 2.0,
        };
        let pctx = PlanContext {
            fabric: &fabric,
            codec_costs: &costs,
            energy: &energy_table,
        };
        let decision = decide(
            &pctx,
            Policy::Mocha {
                objective: Objective::Energy,
            },
            net.layers(),
            &est,
            true,
        );

        // Execute both the controller's choice and the best compression-off
        // config (searched separately — a tiling sized for compressed
        // buffers may not fit once streams ship raw).
        let ectx = ExecContext {
            fabric: &fabric,
            codec_costs: &costs,
        };
        let chosen = mocha::core::exec::execute_layer(
            &ectx,
            layer,
            &input,
            Some(&kernel),
            &decision.morph,
            true,
        )
        .expect("chosen config must be feasible");
        let off_decision = decide(
            &pctx,
            Policy::MochaNoCompression {
                objective: Objective::Energy,
            },
            net.layers(),
            &est,
            true,
        );
        let raw = mocha::core::exec::execute_layer(
            &ectx,
            layer,
            &input,
            Some(&kernel),
            &off_decision.morph,
            true,
        )
        .expect("uncompressed config must be feasible");
        assert_eq!(chosen.output, raw.output, "compression changed results");

        let e_chosen = energy_table.price(&chosen.events).total_pj();
        let e_raw = energy_table.price(&raw.events).total_pj();
        println!(
            "{:>8}% | {:>8.2}x {:>8.2}x | {:>10} B {:>10} B | {:>+7.1} % | {}",
            pct,
            zr,
            bm,
            raw.events.dram_bytes(),
            chosen.events.dram_bytes(),
            100.0 * (e_chosen - e_raw) / e_raw,
            decision.morph.compression,
        );
    }
    println!("\n(negative energy delta = compression won; the controller disables codecs below the crossover)");
}
