//! Deploying a real network: run AlexNet (or any zoo network) on MOCHA and
//! print the morphing controller's per-layer decisions — which optimizations
//! it interleaved and cascaded for each layer shape.
//!
//! Run with: `cargo run --release --example alexnet_deploy [network]`
//! where `network` is one of `tiny`, `lenet5`, `alexnet` (default), `vgg16`.

use mocha::prelude::*;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "alexnet".into());
    let net = network::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown network {name:?}; use tiny, lenet5, alexnet or vgg16");
        std::process::exit(1);
    });
    let workload = Workload::generate(net, SparsityProfile::NOMINAL, 7);
    let energy_table = EnergyTable::default();

    let mut sim = Simulator::new(Accelerator::mocha(Objective::Edp));
    // Golden verification doubles runtime on big networks; keep it on — the
    // point of this simulator is that morphing provably never changes results.
    sim.verify = true;
    let run = sim.run(&workload);

    println!(
        "{:22} {:>34}  {:>10}  {:>8}  {:>8}  {:>9}",
        "group", "chosen morph config", "cycles", "GOPS", "GOPS/W", "SPM KB"
    );
    for g in &run.groups {
        println!(
            "{:22} {:>34}  {:>10}  {:>8.1}  {:>8.1}  {:>9.1}",
            g.name(),
            g.morph.to_string(),
            g.cycles,
            g.gops(energy_table.clock_ghz),
            g.gops_per_watt(),
            g.spm_peak as f64 / 1024.0,
        );
    }

    let report = run.report(&energy_table);
    println!(
        "\ntotal: {} cycles ({:.2} ms) | {:.1} GOPS | {:.1} GOPS/W | {:.0} KB peak storage | {:.2} MB DRAM traffic | compression ratio {:.2}x",
        report.cycles,
        report.seconds() * 1e3,
        report.gops(),
        report.gops_per_watt(),
        report.peak_storage_bytes as f64 / 1024.0,
        report.dram_bytes as f64 / 1e6,
        run.compression().overall_ratio(),
    );
}
