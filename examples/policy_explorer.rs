//! Policy explorer: for every AlexNet layer, score each fixed prior-art
//! policy and MOCHA's auto mode with the analytical planner, and show that
//! *no single fixed policy wins everywhere* — the motivation for
//! morphability (reconstructed figure F5).
//!
//! Run with: `cargo run --release --example policy_explorer`

use mocha::core::controller;
use mocha::prelude::*;

fn main() {
    let net = network::alexnet();
    let fabric_m = FabricConfig::mocha();
    let fabric_b = FabricConfig::baseline();
    let costs = CodecCostTable::default();
    let energy_table = EnergyTable::default();

    let est = SparsityEstimate {
        ifmap_sparsity: 0.6,
        ifmap_mean_run: 3.0,
        kernel_sparsity: 0.3,
        ofmap_sparsity: 0.5,
        ofmap_mean_run: 2.0,
    };

    let fixed = [
        Policy::TilingOnly,
        Policy::FusionOnly,
        Policy::ParallelismOnly,
    ];
    println!(
        "{:10} | {:>12} {:>12} {:>12} | {:>12} | winner (EDP, lower better; 1e12 pJ·cyc)",
        "layer", "tiling", "fusion", "parallel", "mocha"
    );

    let mut wins = std::collections::BTreeMap::<&str, usize>::new();
    let mut est_now = est;
    for i in 0..net.len() {
        let layers = &net.layers()[i..];
        let mut scores = Vec::new();
        for policy in fixed {
            let pctx = PlanContext {
                fabric: &fabric_b,
                codec_costs: &costs,
                energy: &energy_table,
            };
            let d = controller::decide(&pctx, policy, layers, &est_now, true);
            // Normalize multi-layer groups to per-layer EDP share so rows
            // stay comparable (fixed fusion spans several layers).
            scores.push(d.plan.edp() / d.group_len as f64);
        }
        let pctx = PlanContext {
            fabric: &fabric_m,
            codec_costs: &costs,
            energy: &energy_table,
        };
        let mocha_d = controller::decide(
            &pctx,
            Policy::Mocha {
                objective: Objective::Edp,
            },
            layers,
            &est_now,
            true,
        );
        let mocha_score = mocha_d.plan.edp() / mocha_d.group_len as f64;

        let names = ["tiling", "fusion", "parallel"];
        let (win_i, _) = scores
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        *wins.entry(names[win_i]).or_default() += 1;

        println!(
            "{:10} | {:>12.3} {:>12.3} {:>12.3} | {:>12.3} | best fixed: {}",
            net.layers()[i].name,
            scores[0] / 1e12,
            scores[1] / 1e12,
            scores[2] / 1e12,
            mocha_score / 1e12,
            names[win_i],
        );
        est_now = controller::propagate_estimate(&net.layers()[i], &est_now);
    }

    println!("\nbest-fixed-policy wins per layer: {wins:?}");
    println!("no fixed policy dominates — which is exactly why MOCHA morphs per layer");
}
