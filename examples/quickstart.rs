//! Quickstart: simulate LeNet-5 on MOCHA and on the prior-art baselines,
//! and print the comparison the paper's abstract is about.
//!
//! Run with: `cargo run --release --example quickstart`

use mocha::prelude::*;

fn main() {
    // A deterministic synthetic workload: LeNet-5 with nominal sparsity
    // (60 % input zeros, 30 % pruned weights).
    let workload = Workload::generate(network::lenet5(), SparsityProfile::NOMINAL, 42);
    let energy_table = EnergyTable::default();

    println!(
        "network: {} ({} layers, {:.1} M MACs)\n",
        workload.network.name,
        workload.network.len(),
        workload.network.total_macs() as f64 / 1e6
    );

    let mut reports = Vec::new();
    for accelerator in Accelerator::comparison_set(Objective::Edp) {
        let name = accelerator.name.clone();
        let run = Simulator::new(accelerator).run(&workload); // verifies vs golden
        let report = run.report(&energy_table);
        println!(
            "{:10} {:>10} cycles  {:7.2} GOPS  {:8.2} GOPS/W  {:6.1} KB peak storage  {:8.1} KB DRAM traffic",
            name,
            report.cycles,
            report.gops(),
            report.gops_per_watt(),
            report.peak_storage_bytes as f64 / 1024.0,
            report.dram_bytes as f64 / 1024.0,
        );
        reports.push((name, report));
    }

    // The abstract's comparison: MOCHA vs the *next best* accelerator.
    let mocha = &reports[0].1;
    let next_best_eff = reports[1..]
        .iter()
        .map(|(_, r)| r.gops_per_watt())
        .fold(f64::MIN, f64::max);
    let next_best_gops = reports[1..]
        .iter()
        .map(|(_, r)| r.gops())
        .fold(f64::MIN, f64::max);
    let next_best_storage = reports[1..]
        .iter()
        .map(|(_, r)| r.peak_storage_bytes)
        .min()
        .unwrap();

    println!(
        "\nMOCHA vs next-best: {:+.0} % energy efficiency, {:+.0} % throughput, {:+.0} % storage",
        100.0 * improvement(mocha.gops_per_watt(), next_best_eff),
        100.0 * improvement(mocha.gops(), next_best_gops),
        -100.0 * reduction(mocha.peak_storage_bytes as f64, next_best_storage as f64),
    );

    // And the cost side: area overhead.
    let area_table = AreaTable::default();
    let mocha_area = Accelerator::mocha(Objective::Edp)
        .area(&area_table)
        .total_mm2();
    let base_area = Accelerator::tiling_only().area(&area_table).total_mm2();
    println!(
        "area: MOCHA {mocha_area:.2} mm² vs baseline {base_area:.2} mm² ({:+.0} %)",
        100.0 * (mocha_area - base_area) / base_area
    );
}
