//! Resource morphing: sweep the PE array size and show that MOCHA re-morphs
//! its configuration to keep scaling, while a fixed-mapping design saturates
//! once its single parallelism mode runs out of work units (reconstructed
//! figure F6).
//!
//! Run with: `cargo run --release --example resource_morphing`

use mocha::core::controller;
use mocha::prelude::*;

fn main() {
    // AlexNet conv3: 384 output channels over 13x13 — a shape where neither
    // pure intra- nor pure inter-fmap parallelism fills every grid size.
    let net = network::single_conv(256, 13, 13, 384, 3, 1, 1);
    let costs = CodecCostTable::default();
    let energy_table = EnergyTable::default();
    let est = SparsityEstimate {
        ifmap_sparsity: 0.6,
        ifmap_mean_run: 3.0,
        kernel_sparsity: 0.3,
        ofmap_sparsity: 0.5,
        ofmap_mean_run: 2.0,
    };

    println!(
        "{:>5} | {:>12} {:>10} | {:>12} {:>10} | mocha's re-morphed config",
        "PEs", "mocha cyc", "GOPS", "fixed cyc", "GOPS"
    );

    for grid in [2usize, 4, 6, 8, 12, 16] {
        let mut fabric = FabricConfig::mocha();
        fabric.pe_rows = grid;
        fabric.pe_cols = grid;
        let pctx = PlanContext {
            fabric: &fabric,
            codec_costs: &costs,
            energy: &energy_table,
        };

        // MOCHA: full search at this grid size.
        let mocha = controller::decide(
            &pctx,
            Policy::Mocha {
                objective: Objective::Throughput,
            },
            net.layers(),
            &est,
            true,
        );

        // Fixed design: inter-fmap only (parallelism chosen at design time).
        let mut fb = FabricConfig::baseline();
        fb.pe_rows = grid;
        fb.pe_cols = grid;
        let pctx_b = PlanContext {
            fabric: &fb,
            codec_costs: &costs,
            energy: &energy_table,
        };
        let fixed = controller::decide(&pctx_b, Policy::TilingOnly, net.layers(), &est, true);

        let gops = |cycles: u64| {
            2.0 * net.total_macs() as f64 / (cycles as f64 / (energy_table.clock_ghz * 1e9)) / 1e9
        };
        println!(
            "{:>5} | {:>12} {:>10.1} | {:>12} {:>10.1} | {}",
            grid * grid,
            mocha.plan.cycles,
            gops(mocha.plan.cycles),
            fixed.plan.cycles,
            gops(fixed.plan.cycles),
            mocha.morph,
        );
    }
    println!("\nMOCHA re-partitions the grid (parallelism mode + tile shape) as PEs grow; the fixed design saturates");
}
