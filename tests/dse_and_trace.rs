//! Integration tests for the research-tooling surface: Pareto DSE, pipeline
//! traces, and the serde contract the CLI's JSON overrides rely on.

use mocha::core::dse::{explore_layer, pareto_front, DesignPoint};
use mocha::core::trace::Trace;
use mocha::prelude::*;

fn ctxless_est() -> SparsityEstimate {
    SparsityEstimate {
        ifmap_sparsity: 0.6,
        ifmap_mean_run: 3.0,
        kernel_sparsity: 0.3,
        ofmap_sparsity: 0.5,
        ofmap_mean_run: 2.0,
    }
}

#[test]
fn pareto_front_spans_a_real_tradeoff_on_alexnet_conv3() {
    let net = network::single_conv(256, 13, 13, 384, 3, 1, 1);
    let fabric = FabricConfig::mocha();
    let costs = CodecCostTable::default();
    let energy = EnergyTable::default();
    let ctx = PlanContext {
        fabric: &fabric,
        codec_costs: &costs,
        energy: &energy,
    };
    let front = explore_layer(&ctx, &net.layers()[0], &ctxless_est(), true);
    assert!(front.len() >= 3, "front too small: {}", front.len());
    // Sorted by cycles, and storage must generally fall as cycles rise
    // (that's the trade): the last point needs strictly less SPM than the
    // first.
    let first = front.first().unwrap();
    let last = front.last().unwrap();
    assert!(first.plan.cycles < last.plan.cycles);
    assert!(last.plan.spm_peak < first.plan.spm_peak);
}

#[test]
fn pareto_points_execute_bit_exactly() {
    // Every point on the front is a real executable config.
    let net = network::single_conv(16, 16, 16, 16, 3, 1, 1);
    let layer = &net.layers()[0];
    let fabric = FabricConfig::mocha();
    let costs = CodecCostTable::default();
    let energy = EnergyTable::default();
    let ctx = PlanContext {
        fabric: &fabric,
        codec_costs: &costs,
        energy: &energy,
    };
    let front: Vec<DesignPoint> = explore_layer(&ctx, layer, &ctxless_est(), true);

    let mut rng = mocha::model::gen::rng(4);
    let input = mocha::model::gen::activations(layer.input, 0.6, &mut rng);
    let kernel = mocha::model::gen::kernel(layer.kernel_shape().unwrap(), 0.3, &mut rng);
    let expected = golden::conv(layer, &input, &kernel);
    let ectx = ExecContext {
        fabric: &fabric,
        codec_costs: &costs,
    };
    for p in front.iter().take(8) {
        let run =
            mocha::core::exec::execute_layer(&ectx, layer, &input, Some(&kernel), &p.morph, true)
                .unwrap_or_else(|e| panic!("front point {} infeasible: {e}", p.morph));
        assert_eq!(run.output, expected, "front point {}", p.morph);
    }
}

#[test]
fn degenerate_front_helpers() {
    assert!(pareto_front(Vec::new()).is_empty());
}

#[test]
fn traces_cover_every_group_of_a_run() {
    let w = Workload::generate(network::tiny(), SparsityProfile::NOMINAL, 13);
    let run = Simulator::new(Accelerator::mocha(Objective::Edp)).run(&w);
    for g in &run.groups {
        let trace = Trace::new(&g.phases, g.morph.buffering);
        assert_eq!(trace.schedule.total, g.cycles, "group {}", g.name());
        let occupancy = trace.compute_occupancy();
        assert!(
            (0.0..=1.0).contains(&occupancy),
            "group {}: {occupancy}",
            g.name()
        );
        let gantt = trace.gantt(80);
        assert!(gantt.lines().count() >= g.phases.len());
    }
}

#[test]
fn fabric_and_energy_tables_roundtrip_through_json() {
    use mocha_json::{FromJson, ToJson};

    // The CLI's --fabric/--energy overrides depend on this JSON contract.
    let fabric = FabricConfig::mocha();
    let json = fabric.to_json().to_string_pretty();
    let back = FabricConfig::from_json(&mocha_json::parse(&json).unwrap()).unwrap();
    assert_eq!(back, fabric);
    back.validate().unwrap();

    let energy = EnergyTable::default();
    let json = energy.to_json().to_string_compact();
    let back = EnergyTable::from_json(&mocha_json::parse(&json).unwrap()).unwrap();
    assert_eq!(back, energy);

    // Metrics serialize too (for downstream analysis pipelines).
    let w = Workload::generate(network::tiny(), SparsityProfile::NOMINAL, 3);
    let mut sim = Simulator::new(Accelerator::mocha(Objective::Edp));
    sim.verify = false;
    let run = sim.run(&w);
    let json = run.to_json().to_string_compact();
    let back = RunMetrics::from_json(&mocha_json::parse(&json).unwrap()).unwrap();
    assert_eq!(back.cycles(), run.cycles());
}
