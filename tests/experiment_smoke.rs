//! Smoke versions of the headline experiments (T1/T2 shape checks) on the
//! fast `tiny` network — the full tables come from `mocha-bench`'s `repro`
//! binary; these tests pin the *directions* so regressions surface in CI.

use mocha::prelude::*;

fn reports(profile: SparsityProfile, seed: u64) -> Vec<(String, PerfReport)> {
    let w = Workload::generate(network::tiny(), profile, seed);
    let table = EnergyTable::default();
    Accelerator::comparison_set(Objective::Edp)
        .into_iter()
        .map(|acc| {
            let name = acc.name.clone();
            let report = Simulator::new(acc).run(&w).report(&table);
            (name, report)
        })
        .collect()
}

#[test]
fn t1_shape_mocha_wins_energy_efficiency_at_nominal_sparsity() {
    let rs = reports(SparsityProfile::NOMINAL, 60);
    let mocha = rs[0].1.gops_per_watt();
    let next_best = rs[1..]
        .iter()
        .map(|(_, r)| r.gops_per_watt())
        .fold(f64::MIN, f64::max);
    assert!(
        mocha > next_best,
        "mocha {mocha:.2} GOPS/W !> next best {next_best:.2}"
    );
}

#[test]
fn t1_shape_mocha_wins_throughput_at_nominal_sparsity() {
    let rs = reports(SparsityProfile::NOMINAL, 61);
    let mocha = rs[0].1.gops();
    let next_best = rs[1..]
        .iter()
        .map(|(_, r)| r.gops())
        .fold(f64::MIN, f64::max);
    assert!(
        mocha > next_best,
        "mocha {mocha:.2} GOPS !> next best {next_best:.2}"
    );
}

#[test]
fn t1_gains_grow_with_sparsity() {
    // The abstract's numbers are "up to": the favourable end is sparse.
    let nominal = reports(SparsityProfile::NOMINAL, 62);
    let sparse = reports(SparsityProfile::SPARSE, 62);
    let gain = |rs: &[(String, PerfReport)]| {
        let m = rs[0].1.gops_per_watt();
        let b = rs[1..]
            .iter()
            .map(|(_, r)| r.gops_per_watt())
            .fold(f64::MIN, f64::max);
        (m - b) / b
    };
    assert!(
        gain(&sparse) > gain(&nominal),
        "sparse gain {:.2} !> nominal gain {:.2}",
        gain(&sparse),
        gain(&nominal)
    );
}

#[test]
fn t2_shape_area_overhead_in_band() {
    let table = AreaTable::default();
    let mocha = Accelerator::mocha(Objective::Edp).area(&table).total_mm2();
    let baselines = Accelerator::baselines();
    for b in &baselines {
        let base = b.area(&table).total_mm2();
        let overhead = (mocha - base) / base;
        assert!(
            (0.20..=0.40).contains(&overhead),
            "{}: overhead {overhead:.3} far outside the paper's band",
            b.name
        );
    }
}

#[test]
fn f7_shape_each_cascaded_optimization_reduces_dram_traffic() {
    let w = Workload::generate(network::tiny(), SparsityProfile::SPARSE, 63);
    let tiling = Simulator::new(Accelerator::tiling_only())
        .run(&w)
        .events()
        .dram_bytes();
    let nc = Simulator::new(Accelerator::mocha_no_compression(Objective::Energy))
        .run(&w)
        .events()
        .dram_bytes();
    let full = Simulator::new(Accelerator::mocha(Objective::Energy))
        .run(&w)
        .events()
        .dram_bytes();
    // tiling-only ≥ mocha without compression ≥ full mocha.
    assert!(
        nc <= tiling,
        "morphing didn't reduce traffic: {nc} > {tiling}"
    );
    assert!(
        full < nc,
        "compression didn't reduce traffic: {full} >= {nc}"
    );
}
