//! Extension workload: MobileNet-style depthwise-separable networks.
//! Depthwise layers have no cross-channel reduction, so they stress the
//! morphing controller very differently from AlexNet-class layers — and
//! everything must stay bit-exact.

use mocha::prelude::*;

#[test]
fn mocha_runs_mobilenet_bit_exact() {
    let w = Workload::generate(network::mobilenet(), SparsityProfile::NOMINAL, 77);
    // verify = true: every group asserted against the golden model.
    let run = Simulator::new(Accelerator::mocha(Objective::Edp)).run(&w);
    assert_eq!(
        run.groups.iter().map(|g| g.layers.len()).sum::<usize>(),
        w.network.len()
    );
    assert!(run.cycles() > 0);
}

#[test]
fn baselines_run_mobilenet_bit_exact() {
    let w = Workload::generate(network::mobilenet(), SparsityProfile::NOMINAL, 78);
    for acc in Accelerator::baselines() {
        let name = acc.name.clone();
        let run = Simulator::new(acc).run(&w);
        assert!(run.cycles() > 0, "{name}");
    }
}

#[test]
fn depthwise_layers_prefer_spatial_parallelism() {
    // A depthwise layer has reduction depth 1 and (here) generous spatial
    // extent: pure inter-fmap mapping wastes the grid whenever channels <
    // PEs × positions; the controller should pick a spatially-spread mode
    // (intra or hybrid) for the dw layers of MobileNet's early blocks.
    let w = Workload::generate(network::mobilenet(), SparsityProfile::NOMINAL, 79);
    let run = Simulator::new(Accelerator::mocha(Objective::Throughput)).run(&w);
    let dw_groups: Vec<&GroupMetrics> = run
        .groups
        .iter()
        .filter(|g| g.layers.iter().any(|l| l.starts_with("dw")))
        .collect();
    assert!(!dw_groups.is_empty());
    let spatially_spread = dw_groups
        .iter()
        .filter(|g| !matches!(g.morph.parallelism, Parallelism::InterFmap))
        .count();
    assert!(
        spatially_spread > 0,
        "no dw group used spatial parallelism: {:?}",
        dw_groups
            .iter()
            .map(|g| (g.name(), g.morph.parallelism))
            .collect::<Vec<_>>()
    );
}

#[test]
fn mobilenet_fusion_covers_dw_pw_pairs() {
    // dw→pw fusion is the canonical MobileNet optimization; the EDP
    // controller should fuse at least one such pair.
    let w = Workload::generate(network::mobilenet(), SparsityProfile::NOMINAL, 80);
    let run = Simulator::new(Accelerator::mocha(Objective::Edp)).run(&w);
    let fused_dw_pw = run.groups.iter().any(|g| {
        g.layers.len() >= 2
            && g.layers.iter().any(|l| l.starts_with("dw"))
            && g.layers.iter().any(|l| l.starts_with("pw"))
    });
    // Fusion profitability depends on the cost model; if this starts failing
    // after a model change, check F7 before weakening the assertion.
    assert!(
        fused_dw_pw,
        "no dw+pw group fused: {:?}",
        run.groups.iter().map(|g| g.name()).collect::<Vec<_>>()
    );
}

#[test]
fn dwconv_work_accounting_matches_layer_macs() {
    let net = network::mobilenet();
    let dw = net.layers().iter().find(|l| l.name == "dw2").unwrap();
    // dw2: 16 channels of 48x48 output (stride 1 on 48x48 input), k=3.
    assert_eq!(dw.macs(), (16 * 48 * 48 * 9) as u64);
    assert_eq!(dw.kernel_shape().unwrap().volume(), 16 * 9);
}
