//! End-to-end behaviour of the morphing controller across whole networks.

use mocha::core::controller;
use mocha::prelude::*;

fn est(sparsity: f64) -> SparsityEstimate {
    SparsityEstimate {
        ifmap_sparsity: sparsity,
        ifmap_mean_run: 1.0 + 4.0 * sparsity,
        kernel_sparsity: sparsity / 2.0,
        ofmap_sparsity: 0.5,
        ofmap_mean_run: 2.0,
    }
}

#[test]
fn controller_adapts_parallelism_to_layer_shape() {
    // Spatially-huge, channel-poor layer vs channel-rich, spatially-tiny
    // layer must not get the same parallelism mode under a throughput
    // objective (this is the crossover that motivates morphing).
    let fabric = FabricConfig::mocha();
    let costs = CodecCostTable::default();
    let energy = EnergyTable::default();
    let ctx = PlanContext {
        fabric: &fabric,
        codec_costs: &costs,
        energy: &energy,
    };

    let wide = network::single_conv(3, 128, 128, 4, 3, 1, 1);
    let deep = network::single_conv(256, 4, 4, 512, 3, 1, 1);
    let d_wide = controller::decide(
        &ctx,
        Policy::Mocha {
            objective: Objective::Throughput,
        },
        wide.layers(),
        &est(0.5),
        true,
    );
    let d_deep = controller::decide(
        &ctx,
        Policy::Mocha {
            objective: Objective::Throughput,
        },
        deep.layers(),
        &est(0.5),
        true,
    );
    assert_ne!(
        d_wide.morph.parallelism, d_deep.morph.parallelism,
        "wide {} vs deep {} should differ",
        d_wide.morph, d_deep.morph
    );
}

#[test]
fn mocha_fuses_somewhere_on_tiny() {
    // tiny's conv+pool pairs are classic fusion wins; the EDP controller
    // should fuse at least one group.
    let w = Workload::generate(network::tiny(), SparsityProfile::NOMINAL, 21);
    let run = Simulator::new(Accelerator::mocha(Objective::Edp)).run(&w);
    assert!(
        run.groups.iter().any(|g| g.layers.len() > 1),
        "no fused group chosen: {:?}",
        run.groups.iter().map(|g| g.name()).collect::<Vec<_>>()
    );
}

#[test]
fn storage_objective_reduces_peak_storage() {
    let w = Workload::generate(network::tiny(), SparsityProfile::NOMINAL, 22);
    let storage = Simulator::new(Accelerator::mocha(Objective::Storage)).run(&w);
    let throughput = Simulator::new(Accelerator::mocha(Objective::Throughput)).run(&w);
    assert!(
        storage.peak_storage() <= throughput.peak_storage(),
        "storage objective {} > throughput objective {}",
        storage.peak_storage(),
        throughput.peak_storage()
    );
}

#[test]
fn throughput_objective_is_competitive_on_cycles() {
    // The controller optimizes *predicted* cycles greedily per group, so the
    // executed cycle count may deviate by the planner's codec-estimation
    // error; allow that slack, but a throughput-objective run must never be
    // materially slower than runs optimizing something else entirely.
    let w = Workload::generate(network::tiny(), SparsityProfile::NOMINAL, 23);
    let t = Simulator::new(Accelerator::mocha(Objective::Throughput))
        .run(&w)
        .cycles();
    for objective in [Objective::Energy, Objective::Storage] {
        let other = Simulator::new(Accelerator::mocha(objective))
            .run(&w)
            .cycles();
        assert!(
            t as f64 <= other as f64 * 1.10,
            "{objective:?}: throughput run {t} way slower than {other}"
        );
    }
}

#[test]
fn candidates_scale_with_policy_freedom() {
    let w = Workload::generate(network::tiny(), SparsityProfile::NOMINAL, 24);
    let mocha = Simulator::new(Accelerator::mocha(Objective::Edp)).run(&w);
    let tiling = Simulator::new(Accelerator::tiling_only()).run(&w);
    let mocha_cands: usize = mocha.groups.iter().map(|g| g.candidates).sum();
    let tiling_cands: usize = tiling.groups.iter().map(|g| g.candidates).sum();
    assert!(
        mocha_cands > 5 * tiling_cands,
        "mocha searched {mocha_cands}, tiling {tiling_cands}"
    );
}

#[test]
fn controller_turns_compression_on_for_sparse_runs_and_reports_it() {
    let w = Workload::generate(network::tiny(), SparsityProfile::SPARSE, 25);
    let run = Simulator::new(Accelerator::mocha(Objective::Energy)).run(&w);
    assert!(
        run.groups.iter().any(|g| g.morph.compression.any()),
        "no group compressed under a sparse profile"
    );
    assert!(run.compression().compressed_streams > 0);
}
