//! Cross-crate integration: every accelerator policy must produce
//! bit-identical network outputs to the golden reference, on every zoo
//! network it is exercised with — morphing never changes results.

use mocha::prelude::*;

fn final_output(run: &RunMetrics) -> &str {
    // RunMetrics carries names only; equality is asserted inside the
    // simulator (verify = true). This helper just documents the contract.
    run.groups
        .last()
        .map(|g| g.layers.last().unwrap().as_str())
        .unwrap()
}

#[test]
fn all_accelerators_match_golden_on_tiny() {
    let workload = Workload::generate(network::tiny(), SparsityProfile::NOMINAL, 99);
    for acc in Accelerator::comparison_set(Objective::Edp) {
        let name = acc.name.clone();
        let sim = Simulator::new(acc); // verify = true asserts per group
        let run = sim.run(&workload);
        assert_eq!(final_output(&run), "fc5", "{name}");
    }
}

#[test]
fn mocha_matches_golden_on_lenet_across_sparsity_profiles() {
    for profile in [
        SparsityProfile::DENSE,
        SparsityProfile::NOMINAL,
        SparsityProfile::SPARSE,
    ] {
        let workload = Workload::generate(network::lenet5(), profile, 31);
        let run = Simulator::new(Accelerator::mocha(Objective::Edp)).run(&workload);
        assert_eq!(
            run.groups.iter().map(|g| g.layers.len()).sum::<usize>(),
            workload.network.len()
        );
    }
}

#[test]
fn mocha_matches_golden_under_every_objective() {
    let workload = Workload::generate(network::tiny(), SparsityProfile::SPARSE, 5);
    for objective in [
        Objective::Throughput,
        Objective::Energy,
        Objective::Edp,
        Objective::Storage,
    ] {
        let run = Simulator::new(Accelerator::mocha(objective)).run(&workload);
        assert!(run.cycles() > 0, "{objective:?}");
    }
}

#[test]
fn different_seeds_produce_different_but_valid_runs() {
    let a = Simulator::new(Accelerator::mocha(Objective::Edp)).run(&Workload::generate(
        network::tiny(),
        SparsityProfile::NOMINAL,
        1,
    ));
    let b = Simulator::new(Accelerator::mocha(Objective::Edp)).run(&Workload::generate(
        network::tiny(),
        SparsityProfile::NOMINAL,
        2,
    ));
    // Different data ⇒ (almost surely) different compressed traffic.
    assert_ne!(a.events().dram_bytes(), b.events().dram_bytes());
}
