//! Metric sanity invariants on full runs: bounds that must hold for any
//! correct simulation regardless of configuration.

use mocha::prelude::*;

fn mocha_run(profile: SparsityProfile, seed: u64) -> (Workload, RunMetrics) {
    let w = Workload::generate(network::tiny(), profile, seed);
    let run = Simulator::new(Accelerator::mocha(Objective::Edp)).run(&w);
    (w, run)
}

#[test]
fn cycles_respect_the_compute_lower_bound() {
    let (w, run) = mocha_run(SparsityProfile::DENSE, 3);
    // With dense kernels nothing is skipped: the run can never beat
    // total_macs / peak_macs_per_cycle.
    let fabric = FabricConfig::mocha();
    let lower = w.network.total_macs() / fabric.peak_macs_per_cycle() as u64;
    assert!(
        run.cycles() >= lower,
        "cycles {} < compute bound {lower}",
        run.cycles()
    );
}

#[test]
fn energy_is_positive_and_dram_dominated_components_exist() {
    let (_, run) = mocha_run(SparsityProfile::NOMINAL, 4);
    let table = EnergyTable::default();
    let breakdown = table.price(&run.events());
    assert!(breakdown.compute_pj > 0.0);
    assert!(breakdown.spm_pj > 0.0);
    assert!(breakdown.dram_pj > 0.0);
    assert!(breakdown.total_pj() > 0.0);
}

#[test]
fn peak_storage_never_exceeds_scratchpad_capacity() {
    for seed in [1, 2, 3] {
        let (_, run) = mocha_run(SparsityProfile::NOMINAL, seed);
        assert!(run.peak_storage() <= FabricConfig::mocha().spm_bytes());
    }
}

#[test]
fn dram_reads_cover_compulsory_traffic() {
    // At minimum the input feature map and every kernel must be read once
    // (compressed runs read encoded bytes, so compare against encoded size).
    let (w, run) = mocha_run(SparsityProfile::DENSE, 5);
    let compulsory: u64 = w.input.data().len() as u64;
    assert!(run.events().dram_read_bytes >= compulsory);
}

#[test]
fn report_derivations_are_consistent() {
    let (_, run) = mocha_run(SparsityProfile::NOMINAL, 6);
    let table = EnergyTable::default();
    let report = run.report(&table);
    // GOPS × seconds == total ops.
    let ops = report.gops() * 1e9 * report.seconds();
    assert!((ops - 2.0 * run.work_macs() as f64).abs() / ops < 1e-9);
    // watts × seconds == joules.
    let joules = report.watts() * report.seconds();
    assert!((joules - report.energy.total_pj() / 1e12).abs() / joules < 1e-9);
}

#[test]
fn skipped_plus_issued_macs_equal_dense_work() {
    let w = Workload::generate(network::tiny(), SparsityProfile::SPARSE, 7);
    let run = Simulator::new(Accelerator::mocha(Objective::Edp)).run(&w);
    let events = run.events();
    // Fused groups recompute halos, so total ≥ network MACs; without fusion
    // it's exact. Either way issued+skipped ≥ dense and both are consistent.
    assert!(events.macs + events.macs_skipped >= w.network.total_macs());
}

#[test]
fn active_cycles_equal_total_cycles() {
    let (_, run) = mocha_run(SparsityProfile::NOMINAL, 8);
    assert_eq!(run.events().active_cycles, run.cycles());
}
