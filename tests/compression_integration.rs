//! End-to-end compression behaviour: bit-exactness, traffic reduction and
//! the storage claim, across whole networks.

use mocha::prelude::*;

#[test]
fn compression_reduces_dram_traffic_end_to_end() {
    let w = Workload::generate(network::tiny(), SparsityProfile::SPARSE, 40);
    let with = Simulator::new(Accelerator::mocha(Objective::Energy)).run(&w);
    let without = Simulator::new(Accelerator::mocha_no_compression(Objective::Energy)).run(&w);
    assert!(
        with.events().dram_bytes() < without.events().dram_bytes(),
        "compressed {} !< uncompressed {}",
        with.events().dram_bytes(),
        without.events().dram_bytes()
    );
}

#[test]
fn compression_reduces_peak_storage_on_sparse_workloads() {
    // The abstract's "up to 30 % less storage": compressed tiles occupy
    // fewer scratchpad bytes. Compare under the Storage objective so both
    // sides are minimizing the same thing.
    let w = Workload::generate(network::tiny(), SparsityProfile::SPARSE, 41);
    let with = Simulator::new(Accelerator::mocha(Objective::Storage)).run(&w);
    let without = Simulator::new(Accelerator::mocha_no_compression(Objective::Storage)).run(&w);
    assert!(
        with.peak_storage() <= without.peak_storage(),
        "compressed {} > uncompressed {}",
        with.peak_storage(),
        without.peak_storage()
    );
}

#[test]
fn zero_skipping_reduces_issued_macs() {
    let w = Workload::generate(network::tiny(), SparsityProfile::SPARSE, 42);
    let with = Simulator::new(Accelerator::mocha(Objective::Energy)).run(&w);
    let without = Simulator::new(Accelerator::mocha_no_compression(Objective::Energy)).run(&w);
    assert!(with.events().macs < without.events().macs);
    assert!(with.events().macs_skipped > 0);
    assert_eq!(without.events().macs_skipped, 0);
}

#[test]
fn compression_accounting_is_consistent() {
    let w = Workload::generate(network::tiny(), SparsityProfile::SPARSE, 43);
    let run = Simulator::new(Accelerator::mocha(Objective::Energy)).run(&w);
    let c = run.compression();
    assert!(
        c.overall_ratio() >= 1.0,
        "net inflation {}",
        c.overall_ratio()
    );
    // Encoded never exceeds the 2x ZRLE worst case.
    assert!(c.activation_encoded <= 2 * c.activation_raw.max(1));
}

#[test]
fn dense_workload_compression_is_a_no_op_choice() {
    // On fully dense data the controller should never pick a codec that
    // inflates traffic — MOCHA with codecs must not lose to itself without.
    let w = Workload::generate(network::tiny(), SparsityProfile::DENSE, 44);
    let with = Simulator::new(Accelerator::mocha(Objective::Energy)).run(&w);
    let without = Simulator::new(Accelerator::mocha_no_compression(Objective::Energy)).run(&w);
    let table = EnergyTable::default();
    let e_with = with.report(&table).energy.total_pj();
    let e_without = without.report(&table).energy.total_pj();
    assert!(
        e_with <= e_without * 1.02,
        "codecs hurt on dense data: {e_with:.3e} vs {e_without:.3e}"
    );
}
